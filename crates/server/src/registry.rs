//! Engine registry: builds the four domain engines behind one uniform
//! front door, from the same deterministic data loaders the `repro`
//! harness uses.
//!
//! [`EngineSpec`] pins every build parameter (dataset sizes, shard
//! count, thresholds, and the per-domain default query parameters), so
//! two processes constructing an [`EngineSet`] from equal specs hold
//! bit-identical datasets — which is what lets `repro server-smoke` (and
//! CI) diff a network round-trip's `result_hash` against a direct
//! in-process [`ShardedIndex::search_batch`] run.
//!
//! [`EngineSet::run_streaming`] is the server's execution core: it
//! takes one micro-batch of mixed-domain queries, groups them by domain
//! and by equal per-request parameters, fans each group through
//! [`ShardedIndex::search_batch_on`] on the shared persistent
//! [`WorkerPool`], and emits each group's answers as it completes —
//! cheapest group first (shortest-job-first by a measured per-query
//! cost EMA, with heavy groups serialized across dispatchers), so a
//! mixed batch's cheap replies never wait for its GED share.
//! [`EngineSet::run`] is the collect-everything wrapper used by
//! in-process reference runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pigeonring_datagen::{sample_query_ids, GraphConfig, SetConfig, StringConfig, VectorConfig};
use pigeonring_editdist::{EditParams, GramDictionary, GramOrder, QGramCollection, RingEdit};
use pigeonring_graph::{GraphParams, RingGraph};
use pigeonring_hamming::{AllocationStrategy, HammingParams, RingHamming};
use pigeonring_service::{IndexMetrics, MergeStats, SearchEngine, ShardedIndex, WorkerPool};
use pigeonring_setsim::{Collection, RingSetSim, SetParams, Threshold, TokenDictionary};
use pigeonring_telemetry::trace::{kind, ShardTrace, TraceBatch};
use pigeonring_telemetry::{Counter, MetricsRegistry, SpanHandle};

use crate::wire::{Domain, DomainQuery, ErrorCode, Response, CONNECTION_REQUEST_ID};

/// Everything needed to reconstruct the served datasets and engines
/// deterministically. Field-for-field equality ⇒ identical indexes.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSpec {
    /// Shard count for every domain's [`ShardedIndex`].
    pub shards: usize,
    /// Records in the Hamming dataset (gist-like, 256 dims).
    pub hamming_n: usize,
    /// Records in the edit-distance dataset (imdb-like).
    pub edit_n: usize,
    /// Records in the set-similarity dataset (dblp-like).
    pub set_n: usize,
    /// Records in the graph dataset (aids-like).
    pub graph_n: usize,
    /// Queries sampled per domain by [`EngineSpec::sample_queries`].
    pub query_count: usize,
    /// Hamming: parts `m`.
    pub hamming_m: usize,
    /// Hamming default query threshold `τ`.
    pub hamming_tau: u32,
    /// Hamming default chain length `l`.
    pub hamming_l: u32,
    /// Edit distance: build-time threshold `τ`.
    pub edit_tau: usize,
    /// Edit distance: q-gram length `κ`.
    pub edit_kappa: usize,
    /// Edit distance default chain length `l`.
    pub edit_l: u32,
    /// Set similarity: build-time Jaccard threshold.
    pub set_tau: f64,
    /// Set similarity: parts `m`.
    pub set_m: usize,
    /// Set similarity default chain length `l`.
    pub set_l: u32,
    /// Graph: build-time GED threshold `τ`.
    pub graph_tau: usize,
    /// Graph default chain length `l`.
    pub graph_l: u32,
}

impl EngineSpec {
    /// The full-scale reproduction spec (the `repro sweep` datasets and
    /// thresholds: gist/imdb/dblp/aids Ring configurations).
    pub fn full() -> Self {
        EngineSpec {
            shards: 2,
            hamming_n: 100_000,
            edit_n: 20_000,
            set_n: 20_000,
            graph_n: 2_000,
            query_count: 50,
            hamming_m: 16,
            hamming_tau: 48,
            hamming_l: 5,
            edit_tau: 2,
            edit_kappa: 2,
            edit_l: 3,
            set_tau: 0.8,
            set_m: 5,
            set_l: 2,
            graph_tau: 4,
            graph_l: 4,
        }
    }

    /// Seconds-long smoke spec (CI / tests): datasets 10× smaller.
    pub fn quick() -> Self {
        EngineSpec {
            hamming_n: 10_000,
            edit_n: 2_000,
            set_n: 2_000,
            graph_n: 200,
            query_count: 10,
            ..EngineSpec::full()
        }
    }

    /// Paper-§8-scale spec (10× `full`); pair with a real multi-core
    /// host.
    pub fn paper() -> Self {
        EngineSpec {
            hamming_n: 1_000_000,
            edit_n: 200_000,
            set_n: 200_000,
            graph_n: 20_000,
            query_count: 100,
            ..EngineSpec::full()
        }
    }

    /// Deterministic per-domain query sets drawn from the served
    /// datasets, wrapped with this spec's default parameters. Clients
    /// (`repro query` / `repro loadgen`) call this without building any
    /// index: generation is pure in the spec.
    pub fn sample_queries(&self, domain: Domain) -> Vec<DomainQuery> {
        match domain {
            Domain::Hamming => {
                let data = VectorConfig::gist_like(self.hamming_n).generate();
                sample_query_ids(data.len(), self.query_count, 1)
                    .into_iter()
                    .map(|i| DomainQuery::Hamming {
                        // lint: allow(panic) — sample_query_ids draws ids < data.len()
                        query: data[i].clone(),
                        tau: self.hamming_tau,
                        l: self.hamming_l,
                    })
                    .collect()
            }
            Domain::Edit => {
                let data = StringConfig::imdb_like(self.edit_n).generate();
                sample_query_ids(data.len(), self.query_count, 5)
                    .into_iter()
                    .map(|i| DomainQuery::Edit {
                        // lint: allow(panic) — sample_query_ids draws ids < data.len()
                        query: data[i].clone(),
                        l: self.edit_l,
                    })
                    .collect()
            }
            Domain::Set => {
                let data = SetConfig::dblp_like(self.set_n).generate();
                sample_query_ids(data.len(), self.query_count, 4)
                    .into_iter()
                    .map(|i| DomainQuery::Set {
                        // lint: allow(panic) — sample_query_ids draws ids < data.len()
                        tokens: data[i].clone(),
                        l: self.set_l,
                    })
                    .collect()
            }
            Domain::Graph => {
                let data = GraphConfig::aids_like(self.graph_n).generate();
                sample_query_ids(data.len(), self.query_count, 7)
                    .into_iter()
                    .map(|i| DomainQuery::Graph {
                        // lint: allow(panic) — sample_query_ids draws ids < data.len()
                        query: data[i].clone(),
                        l: self.graph_l,
                    })
                    .collect()
            }
        }
    }
}

/// The four sharded domain indexes a server instance answers from.
pub struct EngineSet {
    spec: EngineSpec,
    hamming: ShardedIndex<RingHamming>,
    edit: ShardedIndex<RingEdit>,
    set: ShardedIndex<RingSetSim>,
    graph: ShardedIndex<RingGraph>,
    /// Dimensionality of the Hamming dataset; queries with any other
    /// dimensionality are rejected with a typed `InvalidQuery` error
    /// (the engine itself would panic on a mismatch).
    hamming_dims: usize,
    /// Exponential moving average of measured per-query execution
    /// nanos, one slot per domain in [`Domain::ALL`] order (`0` = not
    /// sampled yet). [`EngineSet::run_streaming`] uses it to order a
    /// mixed batch's domain groups shortest-job-first, so whichever
    /// domains are cheap *on this dataset and scale* answer before the
    /// expensive ones — the ordering adapts instead of hard-coding
    /// "graph is slow".
    cost_ema_ns: [AtomicU64; 4],
    /// Serializes *heavy* group executions (estimated over
    /// [`HEAVY_GROUP_NS`]) across dispatcher threads: expensive compute
    /// queues behind this lock instead of timeslicing against other
    /// expensive compute, so a dispatcher running a cheap group always
    /// has the core to itself long enough to answer in ~its solo
    /// latency. Cheap groups never touch the lock, and SJF ordering
    /// guarantees a batch's cheap replies are already out before its
    /// heavy share blocks here.
    heavy: Mutex<()>,
    /// Per-domain service-layer counters ([`Domain::ALL`] order),
    /// populated by [`EngineSet::attach_metrics`]. Absent ⇒ queries run
    /// with zero accounting overhead.
    metrics: OnceLock<[DomainCounters; 4]>,
}

/// One domain's service-layer counters: total queries answered plus the
/// engine's own filter-chain stage counters. Stage values come from the
/// merged per-shard stats ([`MergeStats::visit`]), so the exported
/// numbers are exactly what the engines measured — not a re-count.
struct DomainCounters {
    queries: Arc<Counter>,
    stages: Vec<(&'static str, Arc<Counter>)>,
}

/// Registers `service.{domain}.queries` plus one
/// `service.{domain}.stage.{field}` counter per field `S` exports.
fn domain_counters<S: MergeStats>(registry: &MetricsRegistry, domain: Domain) -> DomainCounters {
    let queries = registry.counter(&format!("service.{domain}.queries"));
    let mut stages = Vec::new();
    S::default().visit(&mut |name, _| {
        stages.push((
            name,
            // lint: metric(service.{domain}.stage.{field})
            registry.counter(&format!("service.{domain}.stage.{name}")),
        ));
    });
    DomainCounters { queries, stages }
}

/// Estimated group execution time above which the group takes the
/// [`EngineSet::heavy`] lock (6 ms — several scheduler quanta, so only long graph/bulk runs qualify and a millisecond-scale group never queues behind them).
const HEAVY_GROUP_NS: u128 = 6_000_000;

impl EngineSet {
    /// Builds all four domain indexes from `spec` (deterministic:
    /// equal specs ⇒ identical engines).
    ///
    /// The dictionary-bearing domains go through the dictionary-first
    /// [`ShardedIndex::build_global`] path: editdist shards share one
    /// corpus-wide [`GramDictionary`] and setsim shards one
    /// [`TokenDictionary`], so the service layer plans each query once
    /// and every shard executes the same plan — batched mixed-domain
    /// dispatches through the TCP frontend inherit plan sharing for
    /// free. Hamming and graph have no dictionary and empty plans, so
    /// they keep the legacy build: routing them through the plan-once
    /// machinery would cost one `Arc<()>` per query for nothing.
    pub fn build(spec: EngineSpec) -> Self {
        let vectors = VectorConfig::gist_like(spec.hamming_n).generate();
        let hamming_dims = vectors.first().map_or(0, |v| v.dims());
        let m = spec.hamming_m;
        let hamming = ShardedIndex::build(vectors, spec.shards, |shard| {
            RingHamming::build(shard, m, AllocationStrategy::CostModel)
        });
        let (tau, kappa) = (spec.edit_tau, spec.edit_kappa);
        let edit = ShardedIndex::build_global(
            StringConfig::imdb_like(spec.edit_n).generate(),
            spec.shards,
            |corpus| {
                std::sync::Arc::new(GramDictionary::build(corpus, kappa, GramOrder::Frequency))
            },
            |dict, shard| {
                RingEdit::build(
                    QGramCollection::with_dictionary(shard, std::sync::Arc::clone(dict)),
                    tau,
                )
            },
        );
        let (jaccard, set_m) = (Threshold::jaccard(spec.set_tau), spec.set_m);
        let set = ShardedIndex::build_global(
            SetConfig::dblp_like(spec.set_n).generate(),
            spec.shards,
            |corpus| std::sync::Arc::new(TokenDictionary::build(corpus)),
            |dict, shard| {
                RingSetSim::build(
                    Collection::with_dictionary(shard, std::sync::Arc::clone(dict)),
                    jaccard,
                    set_m,
                )
            },
        );
        let graph_tau = spec.graph_tau;
        let graph = ShardedIndex::build(
            GraphConfig::aids_like(spec.graph_n).generate(),
            spec.shards,
            |shard| RingGraph::build(shard, graph_tau),
        );
        EngineSet {
            spec,
            hamming,
            edit,
            set,
            graph,
            hamming_dims,
            cost_ema_ns: Default::default(),
            heavy: Mutex::new(()),
            metrics: OnceLock::new(),
        }
    }

    /// Registers this set's metrics in `registry` and starts recording:
    /// per-domain plan/search latency and batch-size histograms
    /// (`index.{domain}.*`, attached to each [`ShardedIndex`]), a
    /// `service.{domain}.queries` counter, and one
    /// `service.{domain}.stage.{field}` counter per filter-chain stage
    /// statistic the domain's engine exports. First attach wins;
    /// queries served before the attach are simply not counted.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        self.hamming
            .attach_metrics(IndexMetrics::register(registry, "index.hamming"));
        self.edit
            .attach_metrics(IndexMetrics::register(registry, "index.editdist"));
        self.set
            .attach_metrics(IndexMetrics::register(registry, "index.setsim"));
        self.graph
            .attach_metrics(IndexMetrics::register(registry, "index.graph"));
        let _ = self.metrics.set([
            domain_counters::<<RingHamming as SearchEngine>::Stats>(registry, Domain::Hamming),
            domain_counters::<<RingEdit as SearchEngine>::Stats>(registry, Domain::Edit),
            domain_counters::<<RingSetSim as SearchEngine>::Stats>(registry, Domain::Set),
            domain_counters::<<RingGraph as SearchEngine>::Stats>(registry, Domain::Graph),
        ]);
    }

    /// The spec this set was built from.
    pub fn spec(&self) -> &EngineSpec {
        &self.spec
    }

    /// Current per-domain cost EMA in nanoseconds per query
    /// ([`Domain::ALL`] order, `0` = not sampled yet) — the signal the
    /// server's cost-EMA lane-weight tuner reads to size each domain's
    /// share of a dispatch micro-batch.
    pub fn cost_ema_ns(&self) -> [u64; 4] {
        std::array::from_fn(|i| {
            // lint: allow(panic) — from_fn indexes 0..4, the array length
            self.cost_ema_ns[i].load(Ordering::Relaxed)
        })
    }

    /// The sharded Hamming index (for direct in-process comparison).
    pub fn hamming_index(&self) -> &ShardedIndex<RingHamming> {
        &self.hamming
    }

    /// The sharded edit-distance index.
    pub fn edit_index(&self) -> &ShardedIndex<RingEdit> {
        &self.edit
    }

    /// The sharded set-similarity index.
    pub fn set_index(&self) -> &ShardedIndex<RingSetSim> {
        &self.set
    }

    /// The sharded graph index.
    pub fn graph_index(&self) -> &ShardedIndex<RingGraph> {
        &self.graph
    }

    /// Executes one micro-batch of mixed-domain queries on `pool`,
    /// returning one [`Response`] per query in request order.
    /// Convenience wrapper over [`EngineSet::run_streaming`] for
    /// callers that want the whole batch at once (the in-process
    /// reference path of `repro server-smoke`); responses carry
    /// [`CONNECTION_REQUEST_ID`](crate::wire::CONNECTION_REQUEST_ID) —
    /// the server's dispatcher stamps real ids on.
    pub fn run(&self, pool: &WorkerPool, queries: Vec<DomainQuery>) -> Vec<Response> {
        let mut responses: Vec<Option<Response>> = queries.iter().map(|_| None).collect();
        let traces = TraceBatch::untraced(queries.len());
        self.run_streaming(pool, queries, &traces, &mut |slot, resp| {
            // lint: allow(panic) — run_streaming emits slots < queries.len()
            responses[slot] = Some(resp);
        });
        responses
            .into_iter()
            // lint: allow(panic) — run_streaming emits exactly once per slot
            .map(|r| r.expect("every query answered"))
            .collect()
    }

    /// Executes one micro-batch of mixed-domain queries on `pool`,
    /// calling `emit(slot, response)` exactly once per query — **as
    /// each domain group completes**, cheapest group first
    /// (shortest-job-first by the measured per-query cost EMA), so a
    /// mixed batch's cheap answers are on the wire before its expensive
    /// share has run.
    ///
    /// Queries are grouped by domain *and* by equal per-request
    /// parameters, so each group inherits the batched shard fan-out of
    /// [`ShardedIndex::search_batch_on`]; invalid queries (e.g. a
    /// Hamming vector of the wrong dimensionality) get a typed error
    /// without disturbing the rest of the batch.
    ///
    /// `traces` names the traced slots: each traced query gets a
    /// `dispatch` span for its param-group's execution (with `plan` /
    /// `pool` / `shard` children from the sharded index) plus one
    /// zero-duration `stage` marker per filter-chain statistic its
    /// engine reported — all flushed *before* the query's `emit`, so an
    /// EXPLAIN export taken at emit time sees the whole tree.
    pub fn run_streaming(
        &self,
        pool: &WorkerPool,
        queries: Vec<DomainQuery>,
        traces: &TraceBatch,
        emit: &mut dyn FnMut(usize, Response),
    ) {
        let mut hamming: Vec<(usize, pigeonring_hamming::BitVector, HammingParams)> = Vec::new();
        let mut edit: Vec<(usize, Vec<u8>, EditParams)> = Vec::new();
        let mut set: Vec<(usize, Vec<u32>, SetParams)> = Vec::new();
        let mut graph: Vec<(usize, pigeonring_graph::Graph, GraphParams)> = Vec::new();
        for (i, q) in queries.into_iter().enumerate() {
            match q {
                DomainQuery::Hamming { query, tau, l } => {
                    if query.dims() != self.hamming_dims {
                        emit(
                            i,
                            Response::Error {
                                request_id: CONNECTION_REQUEST_ID,
                                code: ErrorCode::InvalidQuery,
                                message: format!(
                                    "query has {} dims, dataset has {}",
                                    query.dims(),
                                    self.hamming_dims
                                ),
                            },
                        );
                    } else {
                        hamming.push((i, query, HammingParams { tau, l: l as usize }));
                    }
                }
                DomainQuery::Edit { query, l } => {
                    edit.push((i, query, EditParams { l: l as usize }));
                }
                DomainQuery::Set { tokens, l } => {
                    set.push((i, tokens, SetParams { l: l as usize }));
                }
                DomainQuery::Graph { query, l } => {
                    graph.push((i, query, GraphParams { l: l as usize }));
                }
            }
        }
        // Shortest job first: order the batch's domain groups by their
        // estimated total execution time (per-query cost EMA × group
        // size), so the cheap share of a mixed batch never waits on the
        // expensive share. Unsampled domains estimate 0 and run early —
        // they get sampled on first contact. Ties keep Domain::ALL
        // order, so the ordering (and the result stream) stays
        // deterministic for a given cost state.
        let sizes = [hamming.len(), edit.len(), set.len(), graph.len()];
        let mut order: [usize; 4] = [0, 1, 2, 3];
        let estimate = |di: usize| -> u128 {
            // lint: allow(panic) — di ranges over the four fixed domain indices
            self.cost_ema_ns[di].load(Ordering::Relaxed) as u128 * sizes[di] as u128
        };
        order.sort_by_key(|&di| (estimate(di), di));
        for di in order {
            // lint: allow(panic) — di ranges over the four fixed domain indices
            if sizes[di] == 0 {
                continue;
            }
            // Heavy groups serialize across dispatchers (cheap groups
            // already answered above in SJF order, so blocking here
            // delays no cheap reply of this batch).
            // The lock guards no data — only execution overlap — so a
            // poisoned lock (a panicking engine on another dispatcher)
            // is safe to keep using.
            let _heavy_guard = if estimate(di) > HEAVY_GROUP_NS {
                Some(self.heavy.lock().unwrap_or_else(|e| e.into_inner()))
            } else {
                None
            };
            let start = std::time::Instant::now();
            // lint: allow(panic) — di ranges over the four fixed domain indices
            let counters = self.metrics.get().map(|m| &m[di]);
            // lint: allow(panic) — di ranges over the four fixed domain indices
            match Domain::ALL[di] {
                Domain::Hamming => run_groups(
                    pool,
                    &self.hamming,
                    std::mem::take(&mut hamming),
                    counters,
                    traces,
                    emit,
                ),
                Domain::Edit => run_groups(
                    pool,
                    &self.edit,
                    std::mem::take(&mut edit),
                    counters,
                    traces,
                    emit,
                ),
                Domain::Set => run_groups(
                    pool,
                    &self.set,
                    std::mem::take(&mut set),
                    counters,
                    traces,
                    emit,
                ),
                Domain::Graph => run_groups(
                    pool,
                    &self.graph,
                    std::mem::take(&mut graph),
                    counters,
                    traces,
                    emit,
                ),
            }
            let per_query_ns =
                // lint: allow(panic) — di ranges over the four fixed domain indices
                (start.elapsed().as_nanos() / sizes[di] as u128).min(u64::MAX as u128) as u64;
            // EMA with a 1/4 step: smooth enough to ride out one odd
            // batch, fresh enough to track warmup and load shifts.
            let _ =
                // lint: allow(panic) — di ranges over the four fixed domain indices
                self.cost_ema_ns[di].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                    Some(if old == 0 {
                        per_query_ns.max(1)
                    } else {
                        (old - old / 4).saturating_add(per_query_ns / 4).max(1)
                    })
                });
        }
    }
}

/// Runs one domain's share of a micro-batch: splits it into runs of
/// equal parameters, answers each run with one batched shard fan-out,
/// and emits results into their request slots as each run completes.
/// When `counters` is attached, folds each run's merged engine stats
/// into the domain's stage counters before emitting. Traced slots get
/// a `dispatch` span around their run plus per-stage markers carrying
/// the query's own merged stats (flushed before `emit`).
fn run_groups<E>(
    pool: &WorkerPool,
    index: &ShardedIndex<E>,
    items: Vec<(usize, E::Query, E::Params)>,
    counters: Option<&DomainCounters>,
    traces: &TraceBatch,
    emit: &mut dyn FnMut(usize, Response),
) where
    E: pigeonring_service::SearchEngine,
    E::Params: PartialEq,
{
    let mut items = items.into_iter().peekable();
    while let Some((slot, query, params)) = items.next() {
        let mut slots = vec![slot];
        let mut batch = vec![query];
        while let Some((s, q, _)) = items.next_if(|(_, _, p)| *p == params) {
            slots.push(s);
            batch.push(q);
        }
        // Open one dispatch span per traced query of this run; the
        // sharded index parents its plan/pool/shard spans under them.
        let mut dispatch: Vec<Option<SpanHandle>> = vec![None; slots.len()];
        let mut shard_trace = None;
        if let Some(c) = traces.collector() {
            for (i, &s) in slots.iter().enumerate() {
                if let Some((trace_id, root)) = traces.target(s) {
                    // lint: allow(panic) — dispatch is sized to slots.len(); i enumerates slots
                    dispatch[i] = Some(c.child_of(trace_id, root));
                }
            }
            let targets: Vec<(u64, u64)> = dispatch
                .iter()
                .flatten()
                .map(|h| (h.trace_id, h.id))
                .collect();
            if !targets.is_empty() {
                shard_trace = Some(ShardTrace {
                    collector: Arc::clone(c),
                    targets,
                });
            }
        }
        let results = index.search_batch_on_traced(pool, &batch, &params, shard_trace.as_ref());
        if let Some(c) = traces.collector() {
            let mut buf = Vec::new();
            for h in dispatch.iter().flatten() {
                buf.push(c.finish(*h, kind::DISPATCH, "", vec![("batch", batch.len() as u64)]));
            }
            // Stage markers carry each traced query's *own* merged
            // stats (not the run total), parented on the root so the
            // per-stage pruning story reads directly off the trace.
            for (i, &s) in slots.iter().enumerate() {
                if let Some((trace_id, root)) = traces.target(s) {
                    // lint: allow(panic) — one result per batch item; i enumerates slots
                    results[i].stats.visit(&mut |name, value| {
                        buf.push(c.instant(
                            trace_id,
                            root,
                            kind::STAGE,
                            name,
                            vec![("count", value)],
                        ));
                    });
                }
            }
            c.extend(buf);
        }
        if let Some(c) = counters {
            c.queries.add(batch.len() as u64);
            let mut total = E::Stats::default();
            for r in &results {
                total.merge(&r.stats);
            }
            total.visit(&mut |name, value| {
                if let Some((_, counter)) = c.stages.iter().find(|(n, _)| *n == name) {
                    counter.add(value);
                }
            });
        }
        for (slot, result) in slots.into_iter().zip(results) {
            emit(
                slot,
                Response::Results {
                    request_id: CONNECTION_REQUEST_ID,
                    ids: result.ids,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> EngineSpec {
        EngineSpec {
            shards: 2,
            hamming_n: 300,
            edit_n: 200,
            set_n: 200,
            graph_n: 60,
            query_count: 4,
            ..EngineSpec::full()
        }
    }

    #[test]
    fn mixed_batch_matches_direct_search() {
        let engines = EngineSet::build(tiny_spec());
        let pool = WorkerPool::new(2);
        // Interleave all four domains in one micro-batch.
        let mut batch = Vec::new();
        for d in Domain::ALL {
            batch.extend(engines.spec().sample_queries(d).into_iter().take(2));
        }
        batch.rotate_left(3);
        let responses = engines.run(&pool, batch.clone());
        assert_eq!(responses.len(), batch.len());
        for (q, resp) in batch.iter().zip(&responses) {
            let Response::Results { ids, .. } = resp else {
                panic!("expected results for {q:?}, got {resp:?}");
            };
            let expect = match q {
                DomainQuery::Hamming { query, tau, l } => {
                    let params = HammingParams {
                        tau: *tau,
                        l: *l as usize,
                    };
                    engines
                        .hamming_index()
                        .search_batch(std::slice::from_ref(query), &params, 1)[0]
                        .ids
                        .clone()
                }
                DomainQuery::Edit { query, l } => {
                    let params = EditParams { l: *l as usize };
                    engines
                        .edit_index()
                        .search_batch(std::slice::from_ref(query), &params, 1)[0]
                        .ids
                        .clone()
                }
                DomainQuery::Set { tokens, l } => {
                    let params = SetParams { l: *l as usize };
                    engines
                        .set_index()
                        .search_batch(std::slice::from_ref(tokens), &params, 1)[0]
                        .ids
                        .clone()
                }
                DomainQuery::Graph { query, l } => {
                    let params = GraphParams { l: *l as usize };
                    engines
                        .graph_index()
                        .search_batch(std::slice::from_ref(query), &params, 1)[0]
                        .ids
                        .clone()
                }
            };
            assert_eq!(ids, &expect);
        }
    }

    #[test]
    fn wrong_dims_gets_typed_error_without_breaking_batch() {
        let engines = EngineSet::build(tiny_spec());
        let pool = WorkerPool::new(1);
        let good = engines.spec().sample_queries(Domain::Hamming);
        let bad = DomainQuery::Hamming {
            query: pigeonring_hamming::BitVector::zeros(8),
            tau: 4,
            l: 2,
        };
        let batch = vec![good[0].clone(), bad, good[1].clone()];
        let responses = engines.run(&pool, batch);
        assert!(matches!(responses[0], Response::Results { .. }));
        assert!(matches!(
            responses[1],
            Response::Error {
                code: ErrorCode::InvalidQuery,
                ..
            }
        ));
        assert!(matches!(responses[2], Response::Results { .. }));
    }

    #[test]
    fn streaming_emits_fast_domains_before_graph() {
        let engines = EngineSet::build(tiny_spec());
        let pool = WorkerPool::new(2);
        let mut batch = Vec::new();
        for d in Domain::ALL {
            batch.extend(engines.spec().sample_queries(d).into_iter().take(2));
        }
        batch.rotate_left(5); // graph queries sit in front of hamming's
        let domains: Vec<Domain> = batch.iter().map(DomainQuery::domain).collect();
        let mut order = Vec::new();
        let traces = TraceBatch::untraced(batch.len());
        engines.run_streaming(&pool, batch, &traces, &mut |slot, _| {
            order.push(domains[slot])
        });
        assert_eq!(order.len(), domains.len(), "every query answered once");
        let last_hamming = order
            .iter()
            .rposition(|&d| d == Domain::Hamming)
            .expect("hamming in batch");
        let first_graph = order
            .iter()
            .position(|&d| d == Domain::Graph)
            .expect("graph in batch");
        assert!(
            last_hamming < first_graph,
            "hamming must be emitted before any graph reply: {order:?}"
        );
    }

    #[test]
    fn equal_specs_build_identical_engines() {
        let a = EngineSet::build(tiny_spec());
        let b = EngineSet::build(tiny_spec());
        let pool = WorkerPool::new(2);
        for d in Domain::ALL {
            let queries = a.spec().sample_queries(d);
            let ra = a.run(&pool, queries.clone());
            let rb = b.run(&pool, queries);
            assert_eq!(ra, rb, "domain {d}");
        }
    }
}
