//! Blocking client for the pigeonring wire protocol (v2).
//!
//! One [`Client`] wraps one TCP connection. [`Client::connect`]
//! performs the Hello/HelloOk version negotiation before returning, so
//! a connected client is always protocol-compatible.
//!
//! Two modes:
//!
//! * **One at a time** — [`Client::search`] sends a query and waits for
//!   its answer (the v1-era call pattern, now id-checked under the
//!   hood).
//! * **Pipelined** — [`Client::search_pipelined`] keeps up to `window`
//!   queries in flight on the one connection, collecting answers *by
//!   request id* (the server may answer out of order) and returning
//!   outcomes in query order. The primitives it is built from —
//!   [`Client::send_query`] / [`Client::recv_reply`] — are public, so
//!   load generators can timestamp each request individually.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, DomainQuery, ErrorCode, Request,
    Response, WireError, CONNECTION_REQUEST_ID, PROTOCOL_VERSION,
};

/// Client-side failure talking to a pigeonring server.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes did not decode.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// The server's error category.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered with the wrong message kind (e.g. results
    /// for a Hello), an unknown request id, or closed mid-exchange.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// What the server said about one query.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The query ran: global record ids within the threshold,
    /// ascending.
    Results(Vec<u32>),
    /// Admission control rejected the query (its domain's lane is
    /// full); retry later.
    Busy,
    /// The server answered this query with a typed per-query error
    /// (e.g. wrong vector dimensionality); the connection stays
    /// usable. [`Client::search`] surfaces this as
    /// [`ClientError::Server`]; pipelined collection keeps it inline so
    /// one bad query doesn't hide the other outcomes.
    Failed {
        /// The server's error category.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// An EXPLAIN query's answer: the result ids plus the request's
    /// span tree as a JSON document.
    Explained {
        /// Global record ids within the threshold, ascending.
        ids: Vec<u32>,
        /// The request's span tree (JSON: `{"trace_id", "spans"}`).
        trace: String,
    },
}

/// A connected, version-negotiated client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    version: u8,
    /// Next request id to allocate; starts at 1 (0 is the reserved
    /// connection-scoped id) and only grows.
    next_id: u64,
}

impl Client {
    /// Connects and negotiates the protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Client {
            reader,
            writer,
            version: PROTOCOL_VERSION,
            next_id: 1,
        };
        write_frame(
            &mut client.writer,
            &encode_request(&Request::Hello {
                max_version: PROTOCOL_VERSION,
            }),
        )?;
        match client.read_response()? {
            Response::HelloOk { version } => {
                client.version = version;
                Ok(client)
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Protocol("expected HelloOk to Hello")),
        }
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Sends one query without waiting for its answer, returning the
    /// request id its response will carry. Pair with
    /// [`Client::recv_reply`]; up to the server's per-lane queue depth
    /// may be usefully in flight at once.
    pub fn send_query(&mut self, query: DomainQuery) -> Result<u64, ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &encode_request(&Request::Query {
                request_id,
                query,
                explain: false,
            }),
        )?;
        Ok(request_id)
    }

    /// Receives the next query-scoped response — **not necessarily for
    /// the oldest in-flight request**; match the returned id against
    /// [`Client::send_query`]'s. A connection-scoped error (id 0) is
    /// surfaced as [`ClientError::Server`] since it dooms every
    /// in-flight request.
    pub fn recv_reply(&mut self) -> Result<(u64, Outcome), ClientError> {
        match self.read_response()? {
            Response::Results { request_id, ids } => Ok((request_id, Outcome::Results(ids))),
            Response::Explained {
                request_id,
                ids,
                json,
            } => Ok((request_id, Outcome::Explained { ids, trace: json })),
            Response::Busy { request_id } => Ok((request_id, Outcome::Busy)),
            Response::Error {
                request_id,
                code,
                message,
            } => {
                if request_id == CONNECTION_REQUEST_ID {
                    Err(ClientError::Server { code, message })
                } else {
                    Ok((request_id, Outcome::Failed { code, message }))
                }
            }
            Response::HelloOk { .. } => Err(ClientError::Protocol("unexpected HelloOk")),
            Response::Stats { .. } => Err(ClientError::Protocol("unexpected Stats response")),
            Response::Trace { .. } => Err(ClientError::Protocol("unexpected Trace response")),
        }
    }

    /// Fetches the server's live metrics snapshot (a JSON document:
    /// machine fingerprint, uptime, all registered metrics, recent slow
    /// queries). Must not be interleaved with in-flight pipelined
    /// queries — like [`Client::search`], it waits for its own reply.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &encode_request(&Request::Stats { request_id }),
        )?;
        match self.read_response()? {
            Response::Stats {
                request_id: got,
                json,
            } => {
                if got != request_id {
                    return Err(ClientError::Protocol("response id does not match request"));
                }
                Ok(json)
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Protocol("expected Stats response")),
        }
    }

    /// Fetches the server's recent sampled traces (a JSON document:
    /// sampling rate, dropped-span count, span trees). Like
    /// [`Client::stats`], it is answered inline on the server's
    /// connection thread — usable even under full lanes — and must not
    /// be interleaved with in-flight pipelined queries.
    pub fn trace(&mut self) -> Result<String, ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &encode_request(&Request::Trace { request_id }),
        )?;
        match self.read_response()? {
            Response::Trace {
                request_id: got,
                json,
            } => {
                if got != request_id {
                    return Err(ClientError::Protocol("response id does not match request"));
                }
                Ok(json)
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Protocol("expected Trace response")),
        }
    }

    /// Sends one query with the EXPLAIN flag set and waits for its
    /// answer: the result ids plus the request's span tree. EXPLAIN
    /// forces tracing, so this works against a server with sampling
    /// disabled.
    pub fn explain(&mut self, query: DomainQuery) -> Result<(Vec<u32>, String), ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &encode_request(&Request::Query {
                request_id,
                query,
                explain: true,
            }),
        )?;
        let (got, outcome) = self.recv_reply()?;
        if got != request_id {
            return Err(ClientError::Protocol("response id does not match request"));
        }
        match outcome {
            Outcome::Explained { ids, trace } => Ok((ids, trace)),
            Outcome::Failed { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Protocol("expected Explained response")),
        }
    }

    /// Sends one query and waits for its answer.
    pub fn search(&mut self, query: DomainQuery) -> Result<Outcome, ClientError> {
        let id = self.send_query(query)?;
        let (got, outcome) = self.recv_reply()?;
        if got != id {
            // One request in flight ⇒ the reply must be its.
            return Err(ClientError::Protocol("response id does not match request"));
        }
        match outcome {
            Outcome::Failed { code, message } => Err(ClientError::Server { code, message }),
            done => Ok(done),
        }
    }

    /// Like [`Client::search`], but retries `Busy` answers up to
    /// `retries` times (yielding the thread between attempts).
    pub fn search_with_retry(
        &mut self,
        query: DomainQuery,
        retries: usize,
    ) -> Result<Outcome, ClientError> {
        for _ in 0..retries {
            match self.search(query.clone())? {
                Outcome::Busy => std::thread::yield_now(),
                done => return Ok(done),
            }
        }
        self.search(query)
    }

    /// Runs `queries` through the connection with up to `window`
    /// requests in flight, collecting responses by id — out-of-order
    /// completion is expected — and returning one [`Outcome`] per query
    /// **in query order**.
    ///
    /// On a connection-level failure (`Err`) the in-flight requests are
    /// lost and the client should be discarded.
    pub fn search_pipelined(
        &mut self,
        queries: &[DomainQuery],
        window: usize,
    ) -> Result<Vec<Outcome>, ClientError> {
        let window = window.max(1);
        let mut outcomes: Vec<Option<Outcome>> = queries.iter().map(|_| None).collect();
        let mut in_flight: HashMap<u64, usize> = HashMap::with_capacity(window);
        let mut next = 0usize;
        let mut done = 0usize;
        while done < queries.len() {
            while in_flight.len() < window && next < queries.len() {
                // lint: allow(panic) — the loop condition bounds next < queries.len()
                let id = self.send_query(queries[next].clone())?;
                in_flight.insert(id, next);
                next += 1;
            }
            let (id, outcome) = self.recv_reply()?;
            let slot = in_flight
                .remove(&id)
                .ok_or(ClientError::Protocol("response for unknown request id"))?;
            *outcomes
                .get_mut(slot)
                .ok_or(ClientError::Protocol("response slot out of range"))? = Some(outcome);
            done += 1;
        }
        outcomes
            .into_iter()
            .map(|o| o.ok_or(ClientError::Protocol("query left unanswered")))
            .collect()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.reader)?
            .ok_or(ClientError::Protocol("server closed before responding"))?;
        Ok(decode_response(&payload)?)
    }
}
