//! Blocking client for the pigeonring wire protocol.
//!
//! One [`Client`] wraps one TCP connection with one request in flight
//! at a time (concurrency comes from opening more clients — see
//! `repro loadgen`). [`Client::connect`] performs the Hello/HelloOk
//! version negotiation before returning, so a connected client is
//! always protocol-compatible.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, DomainQuery, ErrorCode, Request,
    Response, WireError, PROTOCOL_VERSION,
};

/// Client-side failure talking to a pigeonring server.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes did not decode.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// The server's error category.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered with the wrong message kind (e.g. results
    /// for a Hello), or closed mid-exchange.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// What the server said about one query.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The query ran: global record ids within the threshold,
    /// ascending.
    Results(Vec<u32>),
    /// Admission control rejected the query (queue full); retry later.
    Busy,
}

/// A connected, version-negotiated client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    version: u8,
}

impl Client {
    /// Connects and negotiates the protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Client {
            reader,
            writer,
            version: PROTOCOL_VERSION,
        };
        match client.round_trip(&Request::Hello {
            max_version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk { version } => {
                client.version = version;
                Ok(client)
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Protocol("expected HelloOk to Hello")),
        }
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Sends one query and waits for its answer.
    pub fn search(&mut self, query: DomainQuery) -> Result<Outcome, ClientError> {
        match self.round_trip(&Request::Query(query))? {
            Response::Results { ids } => Ok(Outcome::Results(ids)),
            Response::Busy => Ok(Outcome::Busy),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            Response::HelloOk { .. } => Err(ClientError::Protocol("unexpected HelloOk")),
        }
    }

    /// Like [`Client::search`], but retries `Busy` answers up to
    /// `retries` times (yielding the thread between attempts).
    pub fn search_with_retry(
        &mut self,
        query: DomainQuery,
        retries: usize,
    ) -> Result<Outcome, ClientError> {
        for _ in 0..retries {
            match self.search(query.clone())? {
                Outcome::Busy => std::thread::yield_now(),
                done => return Ok(done),
            }
        }
        self.search(query)
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(req))?;
        let payload = read_frame(&mut self.reader)?
            .ok_or(ClientError::Protocol("server closed before responding"))?;
        Ok(decode_response(&payload)?)
    }
}
