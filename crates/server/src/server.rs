//! The TCP frontend: accept loop, per-connection framing threads, and
//! the micro-batching dispatcher between the bounded queue and the
//! worker pool.
//!
//! Data path of one request:
//!
//! ```text
//! client ──frame──▶ connection thread ──try_push──▶ BoundedQueue (≤ Q)
//!                        │  full? ◀─────────────────────┘
//!                        ▼  typed Busy
//!                   dispatcher ──pop_batch(≤ B)──▶ EngineSet::run
//!                        │                         (WorkerPool fan-out)
//!                        └──reply channel──▶ connection thread ──frame──▶ client
//! ```
//!
//! * **Admission control**: connection threads never queue unboundedly —
//!   a full queue answers [`Response::Busy`] immediately; queued
//!   requests are unaffected.
//! * **Micro-batching**: the dispatcher drains up to `micro_batch`
//!   queued requests per wakeup and hands them to the handler as one
//!   mixed-domain batch, so concurrent clients inherit the service
//!   layer's batch amortization.
//! * **Fail closed**: any frame that does not decode draws a typed
//!   [`Response::Error`] and the connection is closed; a handler panic
//!   answers every in-flight request of that batch with a typed
//!   `Internal` error instead of hanging clients.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

use pigeonring_service::WorkerPool;

use crate::queue::BoundedQueue;
use crate::registry::EngineSet;
use crate::wire::{
    decode_request, encode_response, read_frame, write_frame, DomainQuery, ErrorCode, Request,
    Response, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Bounded request-queue depth `Q` (admission control): request
    /// `Q+1` while `Q` are buffered receives [`Response::Busy`].
    pub queue_depth: usize,
    /// Maximum queued requests coalesced into one dispatch `B`.
    pub micro_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 64,
            micro_batch: 16,
        }
    }
}

/// One queued request: the decoded query plus the channel its answer
/// travels back on.
struct Job {
    query: DomainQuery,
    reply: mpsc::Sender<Response>,
}

/// A batch handler: answers one micro-batch of queries, one response
/// per query, in order. Production uses [`EngineSet::run`] on a shared
/// [`WorkerPool`]; tests inject stalling handlers to exercise admission
/// control.
pub type Handler = Arc<dyn Fn(Vec<DomainQuery>) -> Vec<Response> + Send + Sync>;

/// A running server; dropping (or calling [`ServerHandle::shutdown`])
/// stops the accept loop and dispatcher.
pub struct ServerHandle {
    addr: SocketAddr,
    queue: Arc<BoundedQueue<Job>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    dispatch_thread: Option<std::thread::JoinHandle<()>>,
}

/// Starts a server answering from `engines` with `pool` as the
/// execution backend. The listener should already be bound (use port 0
/// for tests); the accept loop, dispatcher, and per-connection threads
/// are all spawned here.
pub fn start(
    listener: TcpListener,
    engines: Arc<EngineSet>,
    pool: WorkerPool,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let handler: Handler = Arc::new(move |queries| engines.run(&pool, queries));
    start_with_handler(listener, handler, config)
}

/// [`start`], but with an arbitrary batch handler (test seam: inject a
/// stalled handler to hold the pool busy and exercise admission
/// control).
pub fn start_with_handler(
    listener: TcpListener,
    handler: Handler,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let queue = Arc::new(BoundedQueue::<Job>::new(config.queue_depth));
    let stop = Arc::new(AtomicBool::new(false));

    let dispatch_thread = {
        let queue = Arc::clone(&queue);
        std::thread::Builder::new()
            .name("pigeonring-dispatch".into())
            .spawn(move || dispatch_loop(&queue, &handler, config.micro_batch))?
    };

    let accept_thread = {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("pigeonring-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else {
                        // Persistent accept errors (fd exhaustion under
                        // load) would otherwise busy-spin this loop at
                        // 100% CPU; back off briefly so closing
                        // connections can release their fds.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        continue;
                    };
                    let queue = Arc::clone(&queue);
                    // Connection threads are detached: they exit when
                    // the peer hangs up or a protocol error closes the
                    // stream.
                    let _ = std::thread::Builder::new()
                        .name("pigeonring-conn".into())
                        .spawn(move || serve_connection(stream, &queue));
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        queue,
        stop,
        accept_thread: Some(accept_thread),
        dispatch_thread: Some(dispatch_thread),
    })
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when bound to 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently buffered in the admission queue (metrics /
    /// tests).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Stops accepting, drains the queue, and joins the accept and
    /// dispatch threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.queue.close();
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Pops micro-batches off the queue and answers them until the queue is
/// closed and drained.
fn dispatch_loop(queue: &BoundedQueue<Job>, handler: &Handler, micro_batch: usize) {
    let mut jobs: Vec<Job> = Vec::new();
    while queue.pop_batch(micro_batch, &mut jobs) {
        let (queries, replies): (Vec<DomainQuery>, Vec<mpsc::Sender<Response>>) =
            jobs.drain(..).map(|j| (j.query, j.reply)).unzip();
        let n = queries.len();
        // A panicking handler (engine bug) must not hang the n clients
        // of this batch, nor kill the dispatcher for future batches.
        let responses = catch_unwind(AssertUnwindSafe(|| handler(queries))).unwrap_or_default();
        if responses.len() == n {
            for (reply, resp) in replies.into_iter().zip(responses) {
                let _ = reply.send(resp); // receiver gone ⇒ client left
            }
        } else {
            for reply in replies {
                let _ = reply.send(Response::Error {
                    code: ErrorCode::Internal,
                    message: "query execution failed".into(),
                });
            }
        }
    }
}

/// One connection: read frames, decode, admit, reply — until EOF or a
/// protocol error (which draws a typed error response, then closes).
///
/// The protocol requires `Hello` as the first frame; a query before
/// negotiation draws a typed `Malformed` error and closes (enforced, so
/// a future v2 can rely on every connection having negotiated).
fn serve_connection(stream: TcpStream, queue: &BoundedQueue<Job>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut negotiated = false;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF between frames
            Err(e) => {
                let _ = write_frame(&mut writer, &encode_response(&error_response(&e)));
                return;
            }
        };
        let response = match decode_request(&payload) {
            Err(e) => {
                let _ = write_frame(&mut writer, &encode_response(&error_response(&e)));
                return; // fail closed on any undecodable frame
            }
            Ok(Request::Hello { max_version }) => {
                if max_version >= PROTOCOL_VERSION {
                    negotiated = true;
                    Response::HelloOk {
                        version: PROTOCOL_VERSION,
                    }
                } else {
                    let resp = Response::Error {
                        code: ErrorCode::UnsupportedVersion,
                        message: format!(
                            "client speaks up to v{max_version}, server requires v{PROTOCOL_VERSION}"
                        ),
                    };
                    let _ = write_frame(&mut writer, &encode_response(&resp));
                    return;
                }
            }
            Ok(Request::Query(query)) => {
                if !negotiated {
                    let resp = Response::Error {
                        code: ErrorCode::Malformed,
                        message: "expected Hello as the first frame".into(),
                    };
                    let _ = write_frame(&mut writer, &response_payload(&resp));
                    return;
                }
                let (reply, rx) = mpsc::channel();
                match queue.try_push(Job { query, reply }) {
                    // Admission control: full (or closing) queue answers
                    // Busy immediately; nothing is buffered.
                    Err(_) => Response::Busy,
                    Ok(()) => rx.recv().unwrap_or(Response::Error {
                        code: ErrorCode::Internal,
                        message: "server shut down mid-request".into(),
                    }),
                }
            }
        };
        if write_frame(&mut writer, &response_payload(&response)).is_err() {
            return; // client hung up
        }
    }
}

/// Encodes a response, substituting a typed `Internal` error when the
/// encoding exceeds the frame cap (a result set too large for one
/// frame) — the client gets a diagnosable answer instead of a
/// connection that dies on an unsendable frame.
fn response_payload(response: &Response) -> Vec<u8> {
    let payload = encode_response(response);
    if payload.len() <= MAX_FRAME_LEN as usize {
        return payload;
    }
    encode_response(&Response::Error {
        code: ErrorCode::Internal,
        message: format!(
            "response of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap; \
             narrow the query threshold",
            payload.len()
        ),
    })
}

/// Maps a decode failure to the typed error the peer sees before the
/// connection closes.
fn error_response(e: &WireError) -> Response {
    let code = match e {
        WireError::BadVersion(_) => ErrorCode::UnsupportedVersion,
        _ => ErrorCode::Malformed,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}
