//! The TCP frontend: connection handling (a nonblocking reactor by
//! default, the PR 4 thread-per-connection backend as a selectable
//! alternative) and the weighted-fair dispatchers between the
//! per-domain lanes and the worker pool.
//!
//! Data path of one request (wire v2, reactor backend):
//!
//! ```text
//! client ══frames══▶ reactor (1 thread, epoll/poll) ──try_push──▶ FairQueue
//!   ║          readable: FrameDecoder ▶ handle_payload  (4 lanes, ≤ Q each)
//!   ║               │ lane full? ▶ Busy{id} ─┐     │
//!   ║          dispatchers (D threads) ◀──WRR pop_batch(≤ B)──┘
//!   ║               │ streams Response{id} per domain group
//!   ║               ▼ ReplySink ──pending + waker──▶ reactor
//! client ◀══frames══ per-connection write buffer, EPOLLOUT re-armed
//! ```
//!
//! * **Readiness, not threads**: one reactor thread owns every
//!   connection — accepting, incrementally decoding frames on
//!   readable events ([`FrameDecoder`]), and draining per-connection
//!   write buffers on writable events. Connection count costs file
//!   descriptors and buffer bytes, never OS threads. The threaded
//!   backend ([`Backend::Threaded`]) keeps the PR 4 reader/writer
//!   pair per connection for differential testing.
//! * **Pipelining**: frames are admitted without waiting for replies,
//!   so many requests per connection are in flight at once; responses
//!   return in completion order, matched to requests by id — out of
//!   order is normal and expected.
//! * **Backpressure**: each connection may have at most
//!   [`ServerConfig::conn_in_flight`] responses admitted-or-unwritten.
//!   At the cap the reactor stops parsing and drops read interest —
//!   the kernel's receive window fills and the client blocks: honest
//!   TCP backpressure, bit-identical in admission behavior to the
//!   threaded backend's blocking [`ReplyBudget`]. A client that stops
//!   draining its socket for 30 s is torn down (a reactor deadline on
//!   the stalled connection; a write timeout in the threaded backend)
//!   with a terminal typed error, counted in `server.writer.stalls`.
//! * **Weighted-fair admission**: each domain owns a bounded lane; a
//!   full lane answers [`Response::Busy`] for *that domain only*, so a
//!   graph burst can't consume Hamming's admission budget, and
//!   [`FairQueue::pop_batch`] assembles every micro-batch by weighted
//!   round-robin so no backlog starves another lane. Lane weights come
//!   from a validated [`LaneWeightPolicy`] — by default derived live
//!   from the engines' measured per-domain cost EMA.
//! * **Streamed replies**: the handler answers each domain *group* of a
//!   micro-batch as it completes, cheapest measured group first — see
//!   [`EngineSet::run_streaming`](crate::registry::EngineSet::run_streaming) —
//!   so a cheap reply never waits for the GED share of its own batch.
//! * **Fail closed**: any frame that does not decode draws a typed
//!   connection-scoped [`Response::Error`] and the connection winds
//!   down; a handler panic answers that batch's unanswered requests
//!   with typed `Internal` errors instead of hanging clients; a closed
//!   queue (shutdown) answers a *terminal* `Internal` error, not a
//!   retryable `Busy`.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

use pigeonring_service::{MachineFingerprint, PoolMetrics, WorkerPool};
use pigeonring_telemetry::trace::{kind, TraceBatch, DEFAULT_TRACE_BUFFER};
use pigeonring_telemetry::{
    Counter, Gauge, Histogram, MetricsRegistry, SpanHandle, TraceCollector,
};

use crate::queue::{lane_of, FairQueue, PushError, NUM_LANES};
use crate::registry::EngineSet;
use crate::weights::{CostEmaWeights, LaneWeightPolicy};
use crate::wire::{
    decode_request, encode_response, read_frame, write_frame, Domain, DomainQuery, ErrorCode,
    Request, Response, WireError, CONNECTION_REQUEST_ID, MAX_FRAME_LEN, PROTOCOL_VERSION,
};

#[cfg(unix)]
use crate::reactor;

/// Which connection-handling engine serves the sockets. Both backends
/// share the lanes, dispatchers, handler, frame handling
/// (`handle_payload`) and metrics — only how bytes move between
/// sockets and the queue differs, which is what makes them
/// differentially testable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// PR 4's thread-per-connection backend: a blocking reader thread
    /// plus a writer thread per connection. Simple, but connection
    /// count costs 2 OS threads each.
    Threaded,
    /// The nonblocking reactor (default): one thread multiplexes every
    /// connection over epoll (Linux) or `poll(2)`.
    #[default]
    Reactor,
}

impl Backend {
    /// Parses a CLI/config name (`"threaded"` / `"reactor"`).
    pub fn parse_name(name: &str) -> Option<Backend> {
        match name {
            "threaded" => Some(Backend::Threaded),
            "reactor" => Some(Backend::Reactor),
            _ => None,
        }
    }

    /// The canonical name (round-trips through [`Backend::parse_name`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Threaded => "threaded",
            Backend::Reactor => "reactor",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Connection-handling backend (default: [`Backend::Reactor`]).
    pub backend: Backend,
    /// Bounded per-lane queue depth `Q` (admission control): request
    /// `Q+1` of a domain while `Q` are buffered in its lane receives
    /// [`Response::Busy`]; other domains' lanes are unaffected.
    pub lane_depth: usize,
    /// Maximum queued requests coalesced into one dispatch `B`.
    pub micro_batch: usize,
    /// Parallel dispatcher threads. More than one lets a fast domain's
    /// batch dispatch while a slow batch is still executing — combined
    /// with streamed replies this is what decouples per-domain tails.
    pub dispatchers: usize,
    /// How each lane's weighted-round-robin share is chosen (in
    /// [`Domain::ALL`] order: Hamming, edit, set, graph). The default
    /// [`LaneWeightPolicy::CostEma`] sizes shares inversely to the
    /// measured per-domain cost EMA, retuned live, so one micro-batch
    /// never carries a long slow-domain run no matter which domains
    /// are slow *on this dataset*; [`LaneWeightPolicy::Static`] pins
    /// explicit shares instead. Validated at startup — an out-of-range
    /// configuration fails [`start`] with `InvalidInput`.
    pub lane_weights: LaneWeightPolicy,
    /// Per-connection reply budget: the maximum responses a connection
    /// may have admitted-or-unwritten at once. Beyond it the reader
    /// stops reading frames (real TCP backpressure) until the writer
    /// drains — so a client that pipelines requests but reads replies
    /// slowly cannot grow server memory without bound.
    pub conn_in_flight: usize,
    /// Slow-query threshold in milliseconds: a query whose
    /// admitted-to-answered latency reaches it is echoed to stderr and
    /// kept in the bounded slow-query ring the Stats snapshot exposes.
    /// `None` (the default) disables the log entirely.
    pub slow_query_ms: Option<u64>,
    /// How many completed slow queries the ring retains for the Stats
    /// snapshot (oldest evicted first).
    pub slow_query_ring: usize,
    /// Head-sampling rate for per-request tracing: one admitted query
    /// in `trace_sample` gets a full span timeline. `0` (the default)
    /// disables sampling; EXPLAIN queries are always traced.
    pub trace_sample: u64,
    /// How many spans the trace ring retains (oldest evicted first;
    /// slow-query traces are pinned and survive eviction).
    pub trace_buffer: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            backend: Backend::default(),
            lane_depth: 64,
            micro_batch: 16,
            dispatchers: 4,
            // Hamming/setsim answer in ~µs, editdist in ~100µs, graph
            // GED in ~ms (see results/BENCH_server.json) — but instead
            // of hard-coding that, derive each lane's share from the
            // live cost EMA (cheap lanes large, expensive bounded).
            lane_weights: LaneWeightPolicy::CostEma(CostEmaWeights::default()),
            conn_in_flight: 32,
            slow_query_ms: None,
            slow_query_ring: 64,
            trace_sample: 0,
            trace_buffer: DEFAULT_TRACE_BUFFER,
        }
    }
}

/// Locks a mutex, recovering the guard when a panicking holder
/// poisoned it. Every mutex in this file guards state that is
/// consistent after any partial update (a ring of owned entries, a
/// counter pair), so serving on recovered state is always sound —
/// aborting the connection or the Stats snapshot would not be.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How long the writer half waits on a blocked socket before declaring
/// the client wedged and tearing the connection down (which frees its
/// buffered replies and unparks a backpressured reader).
pub(crate) const WRITER_STALL_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Where a finished response goes: the backend-specific half of the
/// reply path. Dispatchers (and the inline Stats/Trace answers) are
/// backend-agnostic — they call [`ReplySink::send`] and the sink
/// routes to the connection's writer thread (threaded backend) or to
/// the reactor's pending-reply mailbox plus a wakeup.
#[derive(Clone)]
pub(crate) enum ReplySink {
    /// Threaded backend: the connection's reply channel; its writer
    /// thread serializes the frames.
    Channel(mpsc::Sender<Response>),
    /// Reactor backend: connection token + the shared mailbox the
    /// reactor drains when woken.
    #[cfg(unix)]
    Reactor {
        conn: u64,
        shared: Arc<reactor::ReactorShared>,
    },
}

impl ReplySink {
    /// Delivers one response toward the owning connection. Delivery to
    /// a connection that already went away is silently dropped, like a
    /// send on a closed channel.
    pub(crate) fn send(&self, response: Response) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(response);
            }
            #[cfg(unix)]
            ReplySink::Reactor { conn, shared } => shared.send(*conn, response),
        }
    }
}

/// One queued request: the decoded query, the id to echo, and the
/// connection's reply sink (shared by every in-flight request of that
/// connection).
pub(crate) struct Job {
    request_id: u64,
    query: DomainQuery,
    domain: Domain,
    admitted_at: Instant,
    reply: ReplySink,
    trace: Option<JobTrace>,
}

/// Trace context riding along a sampled (or EXPLAIN) job: the root
/// span opened at admission, and whether the answer must carry the
/// span tree inline ([`Response::Explained`]).
#[derive(Clone, Copy)]
struct JobTrace {
    root: SpanHandle,
    explain: bool,
}

/// One completed query that crossed [`ServerConfig::slow_query_ms`]:
/// kept in a bounded ring for the Stats snapshot and echoed to stderr
/// as it happens.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The query's domain.
    pub domain: Domain,
    /// The request id the client chose for it.
    pub request_id: u64,
    /// Admitted-to-answered latency in microseconds (queue wait plus
    /// execution).
    pub latency_us: u64,
    /// Server uptime in milliseconds when the query completed.
    pub at_ms: u64,
    /// The trace id, when the query was sampled (its trace is pinned
    /// in the collector, so `repro trace` can still fetch it).
    pub trace_id: Option<u64>,
    /// Per-stage candidate counts from the trace's stage markers
    /// (empty for untraced queries).
    pub stages: Vec<(&'static str, u64)>,
}

/// All of a running server's telemetry: the [`MetricsRegistry`] every
/// layer records into (lanes, dispatchers, writer, worker pool, engine
/// stage counters) plus the slow-query ring. One instance exists per
/// server; [`ServerHandle::metrics`] exposes it and
/// [`ServerMetrics::stats_json`] renders the live snapshot the
/// `Request::Stats` wire endpoint returns.
pub struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    started: Instant,
    /// Host fingerprint, rendered once — snapshots embed it so an
    /// artifact is attributable to the machine that produced it.
    machine_json: String,
    admitted: [Arc<Counter>; NUM_LANES],
    busy: [Arc<Counter>; NUM_LANES],
    latency_us: [Arc<Histogram>; NUM_LANES],
    queue_wait_us: [Arc<Histogram>; NUM_LANES],
    pub(crate) errors: Arc<Counter>,
    pub(crate) frames_rejected: Arc<Counter>,
    dispatch_batch: Arc<Histogram>,
    pub(crate) writer_stalls: Arc<Counter>,
    /// Open connections right now (either backend).
    pub(crate) conns: Arc<Gauge>,
    /// Reactor poll returns (the threaded backend leaves these at 0).
    pub(crate) reactor_wakeups: Arc<Counter>,
    /// Readiness events delivered per poll return.
    pub(crate) reactor_events_per_wake: Arc<Histogram>,
    /// Write-buffer flush passes that made progress on a socket.
    pub(crate) reactor_write_flushes: Arc<Counter>,
    slow_query_us: Option<u64>,
    slow_query_cap: usize,
    slow_queries: Mutex<VecDeque<SlowQuery>>,
    tracer: Arc<TraceCollector>,
}

impl ServerMetrics {
    fn new(config: &ServerConfig) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let lane_counter = |kind: &str| {
            // lint: metric(server.lane.{domain}.admitted, server.lane.{domain}.busy)
            Domain::ALL.map(|domain| registry.counter(&format!("server.lane.{domain}.{kind}")))
        };
        let domain_histogram = |kind: &str| {
            // lint: metric(server.{domain}.latency_us, server.{domain}.queue_wait_us)
            Domain::ALL.map(|domain| registry.histogram(&format!("server.{domain}.{kind}")))
        };
        ServerMetrics {
            started: Instant::now(),
            machine_json: MachineFingerprint::detect().to_json(),
            admitted: lane_counter("admitted"),
            busy: lane_counter("busy"),
            latency_us: domain_histogram("latency_us"),
            queue_wait_us: domain_histogram("queue_wait_us"),
            errors: registry.counter("server.errors"),
            frames_rejected: registry.counter("server.frames_rejected"),
            dispatch_batch: registry.histogram("server.dispatch.batch_size"),
            writer_stalls: registry.counter("server.writer.stalls"),
            conns: registry.gauge("server.conns"),
            reactor_wakeups: registry.counter("server.reactor.wakeups"),
            reactor_events_per_wake: registry.histogram("server.reactor.events_per_wake"),
            reactor_write_flushes: registry.counter("server.reactor.write_flushes"),
            slow_query_us: config.slow_query_ms.map(|ms| ms.saturating_mul(1000)),
            slow_query_cap: config.slow_query_ring.max(1),
            slow_queries: Mutex::new(VecDeque::new()),
            tracer: Arc::new(TraceCollector::new(
                config.trace_sample,
                config.trace_buffer,
            )),
            registry,
        }
    }

    /// The per-request trace collector (sampling decisions, the span
    /// ring, JSON export). `Request::Trace` reads it over the wire.
    pub fn tracer(&self) -> &Arc<TraceCollector> {
        &self.tracer
    }

    /// The registry every server-side metric lives in; callers may
    /// register additional metrics of their own here and they will ride
    /// along in every snapshot.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    /// The retained slow queries, oldest first (empty unless
    /// [`ServerConfig::slow_query_ms`] is set).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        lock_recover(&self.slow_queries).iter().cloned().collect()
    }

    /// Records one answered query: latency histogram, and the
    /// slow-query log when the configured threshold is crossed. A
    /// traced slow query's trace is pinned (eviction-proof) and its
    /// per-stage counts are embedded in the log entry.
    fn record_completion(
        &self,
        domain: Domain,
        request_id: u64,
        latency_us: u64,
        trace_id: Option<u64>,
    ) {
        // lint: allow(panic) — lane_of is always < NUM_LANES, the array length
        self.latency_us[lane_of(domain)].record(latency_us);
        let Some(threshold) = self.slow_query_us else {
            return;
        };
        if latency_us < threshold {
            return;
        }
        eprintln!(
            "[pigeonring-server] slow query: domain={domain} request_id={request_id} \
             latency_us={latency_us}"
        );
        let stages = match trace_id {
            Some(id) => {
                self.tracer.pin(id);
                self.tracer.stage_breakdown(id)
            }
            None => Vec::new(),
        };
        let mut log = lock_recover(&self.slow_queries);
        if log.len() >= self.slow_query_cap {
            log.pop_front();
        }
        log.push_back(SlowQuery {
            domain,
            request_id,
            latency_us,
            at_ms: self.uptime_ms(),
            trace_id,
            stages,
        });
    }

    /// The live snapshot document `Request::Stats` answers with:
    /// machine fingerprint, uptime, every registered metric, and the
    /// retained slow queries.
    pub fn stats_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"machine\": ");
        out.push_str(&self.machine_json);
        out.push_str(", \"uptime_ms\": ");
        out.push_str(&self.uptime_ms().to_string());
        out.push_str(", \"metrics\": ");
        out.push_str(&self.registry.snapshot().to_json());
        out.push_str(", \"slow_queries\": [");
        for (i, sq) in self.slow_queries().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let trace_id = match sq.trace_id {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            };
            let stages = sq
                .stages
                .iter()
                .map(|(name, count)| format!("\"{name}\": {count}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "{{\"domain\": \"{}\", \"request_id\": {}, \"latency_us\": {}, \"at_ms\": {}, \
                 \"trace_id\": {}, \"stages\": {{{}}}}}",
                sq.domain, sq.request_id, sq.latency_us, sq.at_ms, trace_id, stages
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Bounds a connection's admitted-or-unwritten responses.
///
/// The *reader* reserves one slot per response it will cause (an
/// admitted query, a `Busy`, a `HelloOk`, an error) and **blocks** when
/// the budget is exhausted — it simply stops reading frames, which is
/// honest TCP backpressure on a client that pipelines faster than it
/// reads. The *writer* releases a slot per response written.
/// Dispatchers never touch the budget, so one slow-reading connection
/// can never stall another connection's dispatch.
struct ReplyBudget {
    /// `(outstanding, writer_gone)`.
    state: Mutex<(usize, bool)>,
    changed: Condvar,
    cap: usize,
}

impl ReplyBudget {
    fn new(cap: usize) -> Self {
        ReplyBudget {
            state: Mutex::new((0, false)),
            changed: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks until a slot is free, then reserves it. Returns `false`
    /// when the writer is gone (client wedged or disconnected) — the
    /// reader should wind the connection down instead of admitting.
    fn reserve(&self) -> bool {
        let mut state = lock_recover(&self.state);
        while state.0 >= self.cap && !state.1 {
            state = self.changed.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if state.1 {
            return false;
        }
        state.0 += 1;
        true
    }

    /// Releases one slot (a response reached the socket).
    fn release(&self) {
        lock_recover(&self.state).0 -= 1;
        self.changed.notify_all();
    }

    /// Marks the writer as gone, unparking any backpressured reader.
    fn writer_gone(&self) {
        lock_recover(&self.state).1 = true;
        self.changed.notify_all();
    }
}

/// Retunes the [`FairQueue`] lane weights from a live per-domain cost
/// signal, once every [`CostEmaWeights::refresh_batches`] dispatched
/// batches. Shared by all dispatcher threads; the counter is atomic
/// and a retune is a handful of relaxed stores, so the dispatch hot
/// path pays one `fetch_add` per batch.
pub(crate) struct WeightTuner {
    /// Reads the current per-lane cost estimate (ns/query, 0 = no
    /// sample) — in production, [`EngineSet::cost_ema_ns`].
    source: Arc<dyn Fn() -> [u64; NUM_LANES] + Send + Sync>,
    cfg: CostEmaWeights,
    batches: AtomicU32,
}

impl WeightTuner {
    fn new(source: Arc<dyn Fn() -> [u64; NUM_LANES] + Send + Sync>, cfg: CostEmaWeights) -> Self {
        WeightTuner {
            source,
            cfg,
            batches: AtomicU32::new(0),
        }
    }

    /// Called once per popped batch; applies freshly derived weights on
    /// the configured cadence.
    fn batch_dispatched(&self, queue: &FairQueue<Job>) {
        let n = self.batches.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        if n % self.cfg.refresh_batches == 0 {
            queue.set_weights(self.cfg.derive((self.source)()));
        }
    }
}

/// A batch handler: answers one micro-batch of queries by calling
/// `emit(slot, response)` once per query, in whatever order it
/// completes them (the dispatcher stamps request ids on). The
/// [`TraceBatch`] says which slots are traced — untraced batches are
/// the common, zero-cost case and handlers that don't trace may ignore
/// it. Production uses [`EngineSet::run_streaming`] on a shared
/// [`WorkerPool`]; tests inject stalling handlers to exercise
/// admission control and out-of-order completion.
pub type Handler =
    Arc<dyn Fn(Vec<DomainQuery>, &TraceBatch, &mut dyn FnMut(usize, Response)) + Send + Sync>;

/// A running server; dropping (or calling [`ServerHandle::shutdown`])
/// stops the accept loop and dispatchers.
pub struct ServerHandle {
    addr: SocketAddr,
    queue: Arc<FairQueue<Job>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    /// Threaded backend: the accept loop's thread.
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Reactor backend: the event loop's thread + wake handle.
    #[cfg(unix)]
    reactor: Option<reactor::ReactorControl>,
    dispatch_threads: Vec<std::thread::JoinHandle<()>>,
}

/// Starts a server answering from `engines` with `pool` as the
/// execution backend. The listener should already be bound (use port 0
/// for tests); the accept loop, dispatchers, and per-connection threads
/// are all spawned here. The engine set's stage counters and the worker
/// pool's utilization metrics are attached to the server's registry, so
/// the Stats snapshot covers every layer.
pub fn start(
    listener: TcpListener,
    engines: Arc<EngineSet>,
    pool: WorkerPool,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let metrics = Arc::new(ServerMetrics::new(&config));
    engines.attach_metrics(metrics.registry());
    pool.attach_metrics(PoolMetrics::register(metrics.registry()));
    // The cost-EMA lane-weight tuner reads the same per-domain EMA the
    // streaming executor maintains for shortest-job-first ordering.
    let tuner = match config.lane_weights {
        LaneWeightPolicy::CostEma(cfg) => {
            let engines = Arc::clone(&engines);
            Some(Arc::new(WeightTuner::new(
                Arc::new(move || engines.cost_ema_ns()),
                cfg,
            )))
        }
        LaneWeightPolicy::Static(_) => None,
    };
    let handler: Handler = Arc::new(move |queries, traces, emit| {
        engines.run_streaming(&pool, queries, traces, emit);
    });
    start_inner(listener, handler, config, metrics, tuner)
}

/// [`start`], but with an arbitrary batch handler (test seam: inject a
/// stalled handler to hold a lane busy and exercise admission control
/// or out-of-order completion). Server-layer metrics (lanes,
/// dispatchers, writer) are still recorded; engine/pool metrics are the
/// caller's to attach via [`ServerMetrics::registry`].
pub fn start_with_handler(
    listener: TcpListener,
    handler: Handler,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let metrics = Arc::new(ServerMetrics::new(&config));
    // No engine set here, so a CostEma policy has no cost signal: it
    // simply serves on its initial (static fallback) weights.
    start_inner(listener, handler, config, metrics, None)
}

fn start_inner(
    listener: TcpListener,
    handler: Handler,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    tuner: Option<Arc<WeightTuner>>,
) -> std::io::Result<ServerHandle> {
    // Reject an out-of-range weight configuration before any thread
    // spawns: startup is the only place the error has a caller to
    // reach.
    if let Err(e) = config.lane_weights.validate() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            e.to_string(),
        ));
    }
    let addr = listener.local_addr()?;
    let queue = Arc::new(FairQueue::<Job>::new(
        config.lane_depth,
        config.lane_weights.initial_weights(),
    ));
    queue.attach_depth_gauges(Domain::ALL.map(|domain| {
        metrics
            .registry
            .gauge(&format!("server.lane.{domain}.depth"))
    }));
    let stop = Arc::new(AtomicBool::new(false));

    let dispatch_threads = (0..config.dispatchers.max(1))
        .map(|i| {
            let queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let metrics = Arc::clone(&metrics);
            let tuner = tuner.clone();
            std::thread::Builder::new()
                .name(format!("pigeonring-dispatch-{i}"))
                .spawn(move || {
                    dispatch_loop(
                        &queue,
                        &handler,
                        config.micro_batch,
                        &metrics,
                        tuner.as_deref(),
                    )
                })
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    match config.backend {
        Backend::Reactor => {
            #[cfg(unix)]
            {
                let control = reactor::spawn(
                    listener,
                    Arc::clone(&queue),
                    Arc::clone(&stop),
                    Arc::clone(&metrics),
                    config.conn_in_flight,
                )?;
                Ok(ServerHandle {
                    addr,
                    queue,
                    stop,
                    metrics,
                    accept_thread: None,
                    reactor: Some(control),
                    dispatch_threads,
                })
            }
            #[cfg(not(unix))]
            {
                Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "the reactor backend requires a unix platform; use Backend::Threaded",
                ))
            }
        }
        Backend::Threaded => {
            let accept_thread = {
                let queue = Arc::clone(&queue);
                let stop = Arc::clone(&stop);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name("pigeonring-accept".into())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let Ok(stream) = stream else {
                                // Persistent accept errors (fd exhaustion
                                // under load) would otherwise busy-spin
                                // this loop at 100% CPU; back off briefly
                                // so closing connections can release
                                // their fds.
                                std::thread::sleep(std::time::Duration::from_millis(10));
                                continue;
                            };
                            let queue = Arc::clone(&queue);
                            let metrics = Arc::clone(&metrics);
                            let conn_in_flight = config.conn_in_flight;
                            // Connection threads are detached: they exit
                            // when the peer hangs up or a protocol error
                            // closes the stream.
                            let _ = std::thread::Builder::new()
                                .name("pigeonring-conn".into())
                                .spawn(move || {
                                    serve_connection(stream, &queue, conn_in_flight, &metrics)
                                });
                        }
                    })?
            };
            Ok(ServerHandle {
                addr,
                queue,
                stop,
                metrics,
                accept_thread: Some(accept_thread),
                #[cfg(unix)]
                reactor: None,
                dispatch_threads,
            })
        }
    }
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when bound to 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently buffered across all lanes, read from the
    /// per-lane depth gauges (no queue mutex taken).
    pub fn queue_len(&self) -> usize {
        Domain::ALL.iter().map(|&d| self.lane_len(d)).sum()
    }

    /// Requests currently buffered in one domain's lane, read from its
    /// depth gauge (no queue mutex taken). A pop in progress can make
    /// the gauge transiently read one high or low; exact interior
    /// counts are not observable without the lock anyway.
    pub fn lane_len(&self, domain: Domain) -> usize {
        match self.queue.depth_gauge(domain) {
            Some(gauge) => gauge.get().max(0) as usize,
            None => self.queue.lane_len(domain),
        }
    }

    /// The server's telemetry: registry, uptime, slow-query ring.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The live snapshot document (same payload `Request::Stats`
    /// returns over the wire).
    pub fn stats_json(&self) -> String {
        self.metrics.stats_json()
    }

    /// Stops accepting, drains the lanes, and joins the accept and
    /// dispatcher threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        // Release/Acquire pairs with the accept/reactor loop's load;
        // the flag carries no data, only the shutdown edge.
        self.stop.store(true, Ordering::Release);
        #[cfg(unix)]
        let reactor_control = self.reactor.take();
        #[cfg(unix)]
        if let Some(mut control) = reactor_control {
            // Wake the reactor so it observes the stop flag and closes
            // the listener; wait for that edge so no connection is
            // accepted after shutdown() returns.
            control.wake();
            control.wait_listener_closed();
            self.queue.close();
            for t in self.dispatch_threads.drain(..) {
                let _ = t.join();
            }
            // The reactor itself keeps serving connections that are
            // still open (their queries now draw the terminal
            // "shutting down" error from the closed queue) and exits
            // once the last one closes — join promptly when they are
            // already gone, otherwise detach and let it wind down.
            control.wake();
            control.join_or_detach();
            return;
        }
        // Unblock the accept loop with a throwaway connection. When the
        // listener is bound to a wildcard address (0.0.0.0 / ::),
        // dialing that address is platform-dependent and can hang;
        // always dial the loopback of the same family at the bound
        // port instead.
        let _ = TcpStream::connect(unblock_addr(self.addr));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.queue.close();
        for t in self.dispatch_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The address [`ServerHandle::stop_threads`] dials to unblock the
/// accept loop: the bound address itself, unless it is a wildcard —
/// then the same-family loopback at the bound port.
fn unblock_addr(bound: SocketAddr) -> SocketAddr {
    if bound.ip().is_unspecified() {
        let loopback: IpAddr = match bound.ip() {
            IpAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
            IpAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
        };
        SocketAddr::new(loopback, bound.port())
    } else {
        bound
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Pops weighted-fair micro-batches off the lanes and answers them
/// until the queue is closed and drained. Several dispatchers run this
/// loop concurrently; replies carry request ids, so completion order
/// across batches is free to interleave.
/// Everything a dispatcher needs to answer (or fail) one slot of a
/// micro-batch. One struct per slot instead of parallel arrays: the
/// emit callback reaches all of it through a single checked
/// `get_mut(slot)`, so a buggy handler emitting an out-of-range slot
/// is ignored rather than panicking the dispatcher.
struct SlotState {
    id: u64,
    domain: Domain,
    admitted: Instant,
    reply: ReplySink,
    trace: Option<JobTrace>,
    answered: bool,
}

fn dispatch_loop(
    queue: &FairQueue<Job>,
    handler: &Handler,
    micro_batch: usize,
    metrics: &ServerMetrics,
    tuner: Option<&WeightTuner>,
) {
    let mut jobs: Vec<Job> = Vec::new();
    while queue.pop_batch(micro_batch, &mut jobs) {
        if let Some(tuner) = tuner {
            tuner.batch_dispatched(queue);
        }
        metrics.dispatch_batch.record(jobs.len() as u64);
        let mut queries = Vec::with_capacity(jobs.len());
        let mut slots: Vec<SlotState> = Vec::with_capacity(jobs.len());
        let mut span_buf = Vec::new();
        for job in jobs.drain(..) {
            let waited_us = job.admitted_at.elapsed().as_micros().min(u64::MAX as u128) as u64;
            // lint: allow(panic) — lane_of is always < NUM_LANES, the array length
            metrics.queue_wait_us[lane_of(job.domain)].record(waited_us);
            if let Some(t) = &job.trace {
                // The queue-wait span covers admission → this pop;
                // re-dating a fresh child to the root's start makes the
                // interval exact without carrying a second handle.
                let mut wait = metrics.tracer.child(&t.root);
                wait.start_us = t.root.start_us;
                span_buf.push(metrics.tracer.finish(wait, kind::QUEUE_WAIT, "", vec![]));
            }
            queries.push(job.query);
            slots.push(SlotState {
                id: job.request_id,
                domain: job.domain,
                admitted: job.admitted_at,
                reply: job.reply,
                trace: job.trace,
                answered: false,
            });
        }
        metrics.tracer.extend(span_buf);
        let trace_batch = TraceBatch::new(
            Arc::clone(&metrics.tracer),
            slots
                .iter()
                .map(|s| s.trace.map(|t| (t.root.trace_id, t.root.id)))
                .collect(),
        );
        // A panicking handler (engine bug) must not hang this batch's
        // clients, nor kill the dispatcher for future batches; whatever
        // the handler already emitted before the panic stands.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            handler(queries, &trace_batch, &mut |slot, resp| {
                let Some(st) = slots.get_mut(slot) else {
                    return;
                };
                if st.answered {
                    return;
                }
                st.answered = true;
                let latency_us = st.admitted.elapsed().as_micros().min(u64::MAX as u128) as u64;
                // Close (and flush) the root span before exporting
                // or pinning, so the trace is complete the moment
                // the response leaves.
                let resp = match st.trace {
                    Some(t) => {
                        let root =
                            metrics
                                .tracer
                                .finish(t.root, kind::QUERY, st.domain.as_str(), vec![]);
                        metrics.tracer.extend(vec![root]);
                        match resp {
                            Response::Results { ids, .. } if t.explain => Response::Explained {
                                request_id: 0, // stamped below
                                ids,
                                json: metrics.tracer.export_trace(t.root.trace_id).pretty(),
                            },
                            other => other,
                        }
                    }
                    None => resp,
                };
                metrics.record_completion(
                    st.domain,
                    st.id,
                    latency_us,
                    st.trace.map(|t| t.root.trace_id),
                );
                if matches!(resp, Response::Error { .. }) {
                    metrics.errors.inc();
                }
                // Receiver gone ⇒ client left; nothing to do.
                st.reply.send(resp.with_request_id(st.id));
            });
        }));
        for st in &slots {
            if !st.answered {
                // A traced query that died still closes its root span,
                // so the exported trace never has dangling parents.
                if let Some(t) = st.trace {
                    let root =
                        metrics
                            .tracer
                            .finish(t.root, kind::QUERY, st.domain.as_str(), vec![]);
                    metrics.tracer.extend(vec![root]);
                }
                metrics.errors.inc();
                st.reply.send(Response::Error {
                    request_id: st.id,
                    code: ErrorCode::Internal,
                    message: "query execution failed".into(),
                });
            }
        }
    }
}

/// One connection, reader half: read frames, decode, admit — without
/// waiting for replies — until EOF or a protocol error (which draws a
/// typed connection-scoped error, then winds the connection down). The
/// writer half runs on its own thread, draining the reply channel; it
/// exits once the reader and every in-flight request have dropped
/// their senders, so admitted queries still get their answers even
/// when the reader stops early.
///
/// The protocol requires `Hello` as the first frame; a query before
/// negotiation draws a typed `Malformed` error and closes (so the
/// server can rely on every connection having negotiated v2).
fn serve_connection(
    stream: TcpStream,
    queue: &FairQueue<Job>,
    conn_in_flight: usize,
    metrics: &ServerMetrics,
) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    metrics.conns.inc();
    // A client that stops draining its socket must not pin the writer
    // (and the replies the budget still counts) forever.
    let _ = stream.set_write_timeout(Some(WRITER_STALL_TIMEOUT));
    let budget = Arc::new(ReplyBudget::new(conn_in_flight));
    let (reply_tx, reply_rx) = mpsc::channel::<Response>();
    let writer_thread = {
        let budget = Arc::clone(&budget);
        let stalls = Arc::clone(&metrics.writer_stalls);
        std::thread::Builder::new()
            .name("pigeonring-conn-writer".into())
            .spawn(move || writer_loop(BufWriter::new(stream), &reply_rx, &budget, &stalls))
    };
    let Ok(writer_thread) = writer_thread else {
        metrics.conns.dec();
        return;
    };

    let sink = ReplySink::Channel(reply_tx.clone());
    let mut negotiated = false;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => break, // clean EOF between frames
            Err(e) => {
                metrics.frames_rejected.inc();
                if budget.reserve() {
                    metrics.errors.inc();
                    let _ = reply_tx.send(error_response(&e));
                }
                break;
            }
        };
        // Every frame produces exactly one response; reserve its reply
        // slot up front. Blocking here *is* the backpressure: a
        // connection with `conn_in_flight` responses admitted or
        // unwritten stops being read until the writer drains.
        if !budget.reserve() {
            break; // writer gone: client wedged or disconnected
        }
        match handle_payload(&payload, &mut negotiated, &sink, queue, metrics) {
            FrameDisposition::Continue => {}
            FrameDisposition::Terminal => break,
        }
    }
    // Dropping the reader's sender lets the writer exit once every
    // in-flight request's sender (held by queued jobs / dispatchers)
    // is gone too — admitted work still answers before the socket
    // closes.
    drop(sink);
    drop(reply_tx);
    let _ = writer_thread.join();
    metrics.conns.dec();
}

/// What the connection owner should do after one frame was handled.
pub(crate) enum FrameDisposition {
    /// Keep reading frames.
    Continue,
    /// Protocol error or shutdown: the response just sent is the
    /// connection's last; stop reading and wind the connection down
    /// (after draining buffered replies).
    Terminal,
}

/// Enforces the shared `Hello`-first / reserved-id preconditions of
/// every identified request; on violation, sends the typed
/// connection-scoped error and reports `true` (caller answers
/// [`FrameDisposition::Terminal`]).
fn precondition_failed(
    negotiated: bool,
    request_id: u64,
    sink: &ReplySink,
    metrics: &ServerMetrics,
) -> bool {
    if !negotiated {
        metrics.errors.inc();
        sink.send(Response::Error {
            request_id: CONNECTION_REQUEST_ID,
            code: ErrorCode::Malformed,
            message: "expected Hello as the first frame".into(),
        });
        return true;
    }
    if request_id == CONNECTION_REQUEST_ID {
        metrics.errors.inc();
        sink.send(Response::Error {
            request_id: CONNECTION_REQUEST_ID,
            code: ErrorCode::Malformed,
            message: "request id 0 is reserved for connection-scoped errors".into(),
        });
        return true;
    }
    false
}

/// Decodes and handles one complete frame payload: negotiation,
/// admission (or `Busy`/shutdown refusal), and the inline Stats/Trace
/// answers. **Both backends call exactly this function**, which is
/// what makes their protocol behavior identical by construction; the
/// caller owns backend-specific concerns (reply budgeting, reading,
/// writing). Every call sends exactly one response — immediately, or
/// later via the admitted job's sink.
pub(crate) fn handle_payload(
    payload: &[u8],
    negotiated: &mut bool,
    sink: &ReplySink,
    queue: &FairQueue<Job>,
    metrics: &ServerMetrics,
) -> FrameDisposition {
    match decode_request(payload) {
        Err(e) => {
            // Fail closed on any undecodable frame.
            metrics.frames_rejected.inc();
            metrics.errors.inc();
            sink.send(error_response(&e));
            FrameDisposition::Terminal
        }
        Ok(Request::Hello { max_version }) => {
            if max_version >= PROTOCOL_VERSION {
                *negotiated = true;
                sink.send(Response::HelloOk {
                    version: PROTOCOL_VERSION,
                });
                FrameDisposition::Continue
            } else {
                metrics.errors.inc();
                sink.send(Response::Error {
                    request_id: CONNECTION_REQUEST_ID,
                    code: ErrorCode::UnsupportedVersion,
                    message: format!(
                        "client speaks up to v{max_version}, server requires v{PROTOCOL_VERSION}"
                    ),
                });
                FrameDisposition::Terminal
            }
        }
        Ok(Request::Query {
            request_id,
            query,
            explain,
        }) => {
            if precondition_failed(*negotiated, request_id, sink, metrics) {
                return FrameDisposition::Terminal;
            }
            let domain = query.domain();
            // The head-sampling decision (and the root span's clock)
            // starts here, at admission — queue wait is part of the
            // request's story. EXPLAIN forces it.
            let trace = metrics
                .tracer
                .sample(explain)
                .map(|root| JobTrace { root, explain });
            let job = Job {
                request_id,
                query,
                domain,
                admitted_at: Instant::now(),
                reply: sink.clone(),
                trace,
            };
            match queue.try_push(domain, job) {
                // Pipelining: admitted — do NOT wait for the reply;
                // the dispatcher sends it through the sink directly.
                Ok(()) => {
                    // lint: allow(panic) — lane_of is always < NUM_LANES
                    metrics.admitted[lane_of(domain)].inc();
                    FrameDisposition::Continue
                }
                // This lane is at capacity right now: retryable.
                Err(PushError::Full(_)) => {
                    // lint: allow(panic) — lane_of is always < NUM_LANES
                    metrics.busy[lane_of(domain)].inc();
                    sink.send(Response::Busy { request_id });
                    FrameDisposition::Continue
                }
                // Shutdown: terminal, not Busy — retrying a dying
                // server is a retry storm, not persistence.
                Err(PushError::Closed(_)) => {
                    metrics.errors.inc();
                    sink.send(Response::Error {
                        request_id,
                        code: ErrorCode::Internal,
                        message: "server shutting down".into(),
                    });
                    FrameDisposition::Terminal
                }
            }
        }
        // Stats never enters the queue: it is answered right here on
        // the calling thread, so a snapshot is available even while
        // every lane is saturated (which is exactly when you want
        // one). Same preconditions as a query: negotiated connection,
        // non-reserved id.
        Ok(Request::Stats { request_id }) => {
            if precondition_failed(*negotiated, request_id, sink, metrics) {
                return FrameDisposition::Terminal;
            }
            sink.send(Response::Stats {
                request_id,
                json: metrics.stats_json(),
            });
            FrameDisposition::Continue
        }
        // Trace follows the Stats pattern exactly: answered inline so
        // recent traces stay readable while every lane is saturated.
        Ok(Request::Trace { request_id }) => {
            if precondition_failed(*negotiated, request_id, sink, metrics) {
                return FrameDisposition::Terminal;
            }
            sink.send(Response::Trace {
                request_id,
                json: metrics.tracer.export_recent().pretty(),
            });
            FrameDisposition::Continue
        }
    }
}

/// One connection, writer half: frames every response — there is no
/// other path to the socket, so the frame-cap substitution in
/// [`response_payload`] covers every outbound message — until all
/// senders hang up (connection winding down) or a write fails (client
/// gone, or stalled past [`WRITER_STALL_TIMEOUT`]). Releases one
/// [`ReplyBudget`] slot per response taken off the channel, and marks
/// the budget on exit so a backpressured reader unparks.
fn writer_loop(
    mut writer: BufWriter<TcpStream>,
    replies: &mpsc::Receiver<Response>,
    budget: &ReplyBudget,
    stalls: &Counter,
) {
    while let Ok(response) = replies.recv() {
        let result = write_frame(&mut writer, &response_payload(&response));
        budget.release();
        if let Err(e) = result {
            // Distinguish a wedged client (stalled past the write
            // timeout) from an ordinary hangup in the metrics.
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                stalls.inc();
            }
            break; // client hung up or wedged; senders' sends fail silently
        }
    }
    budget.writer_gone();
}

/// Encodes a response, substituting a typed `Internal` error (tagged
/// with the same request id) when the encoding exceeds the frame cap (a
/// result set too large for one frame) — the client gets a diagnosable
/// answer instead of a connection that dies on an unsendable frame.
/// Every outbound frame goes through here; nothing calls
/// [`encode_response`] + [`write_frame`] directly.
pub(crate) fn response_payload(response: &Response) -> Vec<u8> {
    let payload = encode_response(response);
    if payload.len() <= MAX_FRAME_LEN as usize {
        return payload;
    }
    encode_response(&Response::Error {
        request_id: response.request_id(),
        code: ErrorCode::Internal,
        message: format!(
            "response of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap; \
             narrow the query threshold",
            payload.len()
        ),
    })
}

/// Maps a decode failure to the typed connection-scoped error the peer
/// sees before the connection closes.
pub(crate) fn error_response(e: &WireError) -> Response {
    let code = match e {
        WireError::BadVersion(_) => ErrorCode::UnsupportedVersion,
        _ => ErrorCode::Malformed,
    };
    Response::Error {
        request_id: CONNECTION_REQUEST_ID,
        code,
        message: e.to_string(),
    }
}
