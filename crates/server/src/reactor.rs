//! The nonblocking reactor backend: one thread multiplexes every
//! connection over [`sys::Poller`] readiness events.
//!
//! Per connection the reactor keeps a small state machine — an
//! incremental [`FrameDecoder`] on the read side, a queue of encoded
//! response frames plus a write cursor on the write side — and
//! reproduces the threaded backend's semantics exactly:
//!
//! * **Admission**: every complete frame goes through the same
//!   [`handle_payload`] the threaded reader uses; protocol behavior is
//!   shared code, not a reimplementation.
//! * **Reply budget**: `outstanding` counts responses
//!   admitted-or-unwritten, incremented when a frame is accepted for
//!   handling and decremented when its response's last byte reaches
//!   the socket — the same ledger [`ReplyBudget`] keeps with a mutex.
//!   At `conn_in_flight` the reactor stops parsing *and drops read
//!   interest*, so the kernel's receive window fills and the client
//!   blocks: real TCP backpressure without a parked thread.
//! * **Writer-stall teardown**: a connection that accepts no bytes for
//!   30 s ([`WRITER_STALL_TIMEOUT`]) while replies are buffered is
//!   counted in `server.writer.stalls` and torn down — after a
//!   best-effort terminal typed error is appended and flushed, so the
//!   buffered replies are never dropped *silently*.
//! * **Shutdown**: when the stop flag rises the reactor closes the
//!   listener (so `shutdown()` can return knowing no new connection
//!   will be accepted) but keeps serving open connections — their
//!   queries draw the terminal "server shutting down" error from the
//!   closed queue — and exits when the last one closes.
//!
//! Dispatchers hand finished responses to [`ReactorShared::send`]: a
//! mailbox plus a [`sys::Waker`] kick that interrupts a blocked
//! [`sys::Poller::wait`]. Stall deadlines are folded into the wait
//! timeout, replacing the threaded backend's per-socket write timeout.

#![cfg(unix)]

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::queue::FairQueue;
use crate::server::{
    error_response, handle_payload, lock_recover, response_payload, FrameDisposition, Job,
    ReplySink, ServerMetrics, WRITER_STALL_TIMEOUT,
};
use crate::sys;
use crate::wire::{ErrorCode, FrameDecoder, Response, WireError, CONNECTION_REQUEST_ID};

/// Poller token of the listening socket.
const LISTENER: u64 = 0;
/// Poller token of the waker's receive side.
const WAKER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN: u64 = 2;

/// Bytes pulled off a socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// The dispatcher-facing half of the reactor: finished responses land
/// in the mailbox and the waker interrupts a blocked poll wait so the
/// reactor picks them up immediately.
pub(crate) struct ReactorShared {
    pending: Mutex<Vec<(u64, Response)>>,
    waker: sys::Waker,
}

impl ReactorShared {
    /// Queues one response for connection `conn` and kicks the
    /// reactor. A token whose connection already closed is dropped at
    /// delivery, like a send on a closed channel.
    pub(crate) fn send(&self, conn: u64, response: Response) {
        lock_recover(&self.pending).push((conn, response));
        self.waker.wake();
    }
}

/// The server handle's grip on a running reactor.
pub(crate) struct ReactorControl {
    thread: Option<std::thread::JoinHandle<()>>,
    shared: Arc<ReactorShared>,
    listener_closed: Arc<AtomicBool>,
}

impl ReactorControl {
    /// Interrupts a blocked poll wait (e.g. so the stop flag is seen).
    pub(crate) fn wake(&self) {
        self.shared.waker.wake();
    }

    /// Blocks (bounded at 1 s) until the reactor has observed the stop
    /// flag and closed its listener — after this returns, no new
    /// connection can be accepted.
    pub(crate) fn wait_listener_closed(&self) {
        let deadline = Instant::now() + Duration::from_secs(1);
        while !self.listener_closed.load(Ordering::Acquire) && Instant::now() < deadline {
            self.shared.waker.wake();
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Joins the reactor if it winds down promptly (no connections
    /// left), otherwise detaches it: a detached reactor keeps
    /// answering its open connections — every query now draws the
    /// terminal shutdown error from the closed queue — and exits when
    /// the last client hangs up.
    pub(crate) fn join_or_detach(&mut self) {
        let Some(handle) = self.thread.take() else {
            return;
        };
        let deadline = Instant::now() + Duration::from_millis(250);
        while !handle.is_finished() {
            if Instant::now() >= deadline {
                return; // detach: open connections outlive shutdown()
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = handle.join();
    }
}

/// Starts the reactor thread serving `listener`. The poller backend is
/// epoll on Linux unless the `PIGEONRING_FORCE_POLL` environment
/// variable is set (the differential-test seam for the portable
/// `poll(2)` path).
pub(crate) fn spawn(
    listener: TcpListener,
    queue: Arc<FairQueue<Job>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    conn_in_flight: usize,
) -> std::io::Result<ReactorControl> {
    listener.set_nonblocking(true)?;
    let (waker, wake_rx) = sys::wake_pair()?;
    let shared = Arc::new(ReactorShared {
        pending: Mutex::new(Vec::new()),
        waker,
    });
    let listener_closed = Arc::new(AtomicBool::new(false));
    let mut poller = if std::env::var_os("PIGEONRING_FORCE_POLL").is_some() {
        sys::Poller::new_poll_fallback()
    } else {
        sys::Poller::new()?
    };
    poller.register(listener.as_raw_fd(), LISTENER, sys::Interest::READ)?;
    poller.register(wake_rx.raw_fd(), WAKER, sys::Interest::READ)?;

    let mut reactor = Reactor {
        poller,
        listener: Some(listener),
        wake_rx,
        conns: HashMap::new(),
        next_token: FIRST_CONN,
        queue,
        stop,
        metrics,
        shared: Arc::clone(&shared),
        listener_closed: Arc::clone(&listener_closed),
        cap: conn_in_flight.max(1),
        events: Vec::new(),
    };
    let thread = std::thread::Builder::new()
        .name("pigeonring-reactor".into())
        .spawn(move || reactor.run())?;
    Ok(ReactorControl {
        thread: Some(thread),
        shared,
        listener_closed,
    })
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded outbound frames (4-byte length prefix + payload each),
    /// oldest first; `front_pos` is the write cursor into the front
    /// frame.
    outbuf: VecDeque<Vec<u8>>,
    front_pos: usize,
    /// Responses admitted-or-unwritten — the reply budget's ledger.
    outstanding: usize,
    negotiated: bool,
    /// A terminal response was sent: stop parsing, flush, then close.
    closing: bool,
    /// The peer cleanly ended its write side; in-flight responses
    /// still flush before the socket closes.
    read_closed: bool,
    /// Interest bits currently registered with the poller.
    registered: sys::Interest,
    /// Armed while buffered bytes make no progress; expiry is the
    /// writer-stall teardown.
    stall_deadline: Option<Instant>,
}

impl Conn {
    /// The interest this connection *should* have registered.
    fn desired_interest(&self, cap: usize) -> sys::Interest {
        sys::Interest {
            // Dropping read interest at the budget cap is the
            // backpressure: the kernel buffer fills and the client's
            // sends block.
            read: !self.read_closed && !self.closing && self.outstanding < cap,
            write: !self.outbuf.is_empty(),
        }
    }

    /// Whether this connection is fully drained and ready to close.
    fn done(&self) -> bool {
        (self.closing || self.read_closed) && self.outstanding == 0 && self.outbuf.is_empty()
    }
}

struct Reactor {
    poller: sys::Poller,
    listener: Option<TcpListener>,
    wake_rx: sys::WakeReceiver,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    queue: Arc<FairQueue<Job>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    shared: Arc<ReactorShared>,
    listener_closed: Arc<AtomicBool>,
    cap: usize,
    events: Vec<sys::Event>,
}

impl Reactor {
    fn run(&mut self) {
        loop {
            // Shutdown, phase 1: close the listener the moment the
            // stop flag is visible, so `shutdown()` can return knowing
            // no further connection will be accepted. Open connections
            // keep being served.
            if self.stop.load(Ordering::Acquire) {
                if let Some(listener) = self.listener.take() {
                    let _ = self.poller.deregister(listener.as_raw_fd());
                    drop(listener);
                    self.listener_closed.store(true, Ordering::Release);
                }
                // Shutdown, phase 2: the last connection is gone.
                if self.conns.is_empty() {
                    return;
                }
            }

            self.deliver_pending();
            self.sweep_stalled();

            let timeout = self
                .nearest_deadline()
                .map(|deadline| deadline.saturating_duration_since(Instant::now()));
            let mut events = std::mem::take(&mut self.events);
            match self.poller.wait(&mut events, timeout) {
                Ok(n) => {
                    self.metrics.reactor_wakeups.inc();
                    self.metrics.reactor_events_per_wake.record(n as u64);
                }
                Err(_) => {
                    // A failed wait (EBADF would be a reactor bug; an
                    // allocation-level failure is unrecoverable here)
                    // must not busy-loop at 100% CPU.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            self.events = events;

            for i in 0..self.events.len() {
                // lint: allow(panic) — i < events.len() by the loop bound
                let ev = self.events[i];
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKER => self.wake_rx.drain(),
                    token => {
                        if ev.readable || ev.error {
                            self.conn_readable(token);
                        }
                        if ev.writable {
                            self.flush_conn(token);
                        }
                        self.reconcile(token);
                    }
                }
            }
        }
    }

    /// Accepts every connection currently pending on the listener.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = sys::Interest::READ;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, interest)
                        .is_err()
                    {
                        continue; // fd table full; drop the connection
                    }
                    self.metrics.conns.inc();
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            outbuf: VecDeque::new(),
                            front_pos: 0,
                            outstanding: 0,
                            negotiated: false,
                            closing: false,
                            read_closed: false,
                            registered: interest,
                            stall_deadline: None,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept failure (e.g. fd exhaustion): stop
                // for this readiness round instead of spinning; the
                // level-triggered poller re-reports while the backlog
                // persists, interleaved with fd-releasing closes.
                Err(_) => return,
            }
        }
    }

    /// Pulls available bytes off the socket, feeding the decoder and
    /// parsing frames, until the socket would block, the reply budget
    /// is exhausted, or the connection starts closing.
    fn conn_readable(&mut self, token: u64) {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing || conn.read_closed || conn.outstanding >= self.cap {
                return;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    if conn.decoder.has_partial() {
                        // EOF inside a frame: the same typed error the
                        // blocking `read_frame` raises.
                        self.metrics.frames_rejected.inc();
                        self.metrics.errors.inc();
                        conn.outstanding += 1;
                        let resp = error_response(&WireError::Truncated);
                        enqueue_frame(conn, &resp);
                        conn.closing = true;
                    } else {
                        conn.read_closed = true;
                    }
                    self.flush_conn(token);
                    return;
                }
                Ok(n) => {
                    // lint: allow(panic) — read() guarantees n ≤ buf.len()
                    conn.decoder.feed(&buf[..n]);
                    self.pump_parse(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Hard socket error: the peer is unreachable, so
                    // buffered replies have nowhere to go.
                    self.drop_conn(token);
                    return;
                }
            }
        }
    }

    /// Parses as many complete frames as the budget allows out of the
    /// connection's decoder, handing each to the shared
    /// [`handle_payload`]. Frames beyond the budget stay buffered (in
    /// the decoder or the kernel) until responses drain.
    fn pump_parse(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing || conn.outstanding >= self.cap {
                return;
            }
            match conn.decoder.next_frame() {
                Ok(Some(payload)) => {
                    // The frame will produce exactly one response:
                    // reserve its budget slot, exactly like the
                    // threaded reader's `budget.reserve()`.
                    conn.outstanding += 1;
                    let sink = ReplySink::Reactor {
                        conn: token,
                        shared: Arc::clone(&self.shared),
                    };
                    let disposition = handle_payload(
                        &payload,
                        &mut conn.negotiated,
                        &sink,
                        &self.queue,
                        &self.metrics,
                    );
                    if matches!(disposition, FrameDisposition::Terminal) {
                        // Mirror of the threaded reader's `break`: any
                        // bytes already buffered past the terminal
                        // frame are never parsed.
                        let Some(conn) = self.conns.get_mut(&token) else {
                            return;
                        };
                        conn.closing = true;
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    // Undecodable frame boundary (oversized length):
                    // same accounting as the threaded read_frame error
                    // path — typed error, then wind down.
                    self.metrics.frames_rejected.inc();
                    self.metrics.errors.inc();
                    conn.outstanding += 1;
                    let resp = error_response(&e);
                    enqueue_frame(conn, &resp);
                    conn.closing = true;
                    return;
                }
            }
        }
    }

    /// Writes buffered frames until the socket would block or the
    /// buffer drains. Completing a frame releases one budget slot; if
    /// that reopens read capacity, buffered-but-unparsed frames are
    /// pumped immediately (the client may never send another byte to
    /// re-trigger readable).
    fn flush_conn(&mut self, token: u64) {
        let mut progressed = false;
        let mut reopened = false;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let Some(front) = conn.outbuf.front() else {
                break;
            };
            // lint: allow(panic) — front_pos ≤ front.len() is a loop invariant
            let rest = &front[conn.front_pos..];
            match conn.stream.write(rest) {
                Ok(0) => {
                    self.drop_conn(token);
                    return;
                }
                Ok(n) => {
                    progressed = true;
                    conn.stall_deadline = None;
                    conn.front_pos += n;
                    if conn.front_pos == conn.outbuf.front().map(Vec::len).unwrap_or(conn.front_pos)
                    {
                        conn.outbuf.pop_front();
                        conn.front_pos = 0;
                        // Response fully on the wire: release the
                        // budget slot (the threaded writer's
                        // `budget.release()`).
                        let was_at_cap = conn.outstanding >= self.cap;
                        conn.outstanding = conn.outstanding.saturating_sub(1);
                        if was_at_cap && conn.outstanding < self.cap && !conn.closing {
                            reopened = true;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // The client stopped draining: arm the stall
                    // deadline (the reactor's version of the 30 s
                    // write timeout).
                    if conn.stall_deadline.is_none() {
                        conn.stall_deadline = Some(Instant::now() + WRITER_STALL_TIMEOUT);
                    }
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        if progressed {
            self.metrics.reactor_write_flushes.inc();
        }
        if reopened {
            self.pump_parse(token);
        }
        self.reconcile(token);
    }

    /// Moves mailbox responses into their connections' write buffers
    /// and flushes. Loops because a flush can release budget, which
    /// pumps the parser, which can produce new inline responses.
    fn deliver_pending(&mut self) {
        loop {
            let batch = std::mem::take(&mut *lock_recover(&self.shared.pending));
            if batch.is_empty() {
                return;
            }
            let mut touched = Vec::with_capacity(batch.len());
            for (token, response) in batch {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue; // connection already closed: drop, like a dead channel
                };
                enqueue_frame(conn, &response);
                if !touched.contains(&token) {
                    touched.push(token);
                }
            }
            for token in touched {
                self.flush_conn(token);
            }
        }
    }

    /// Brings a connection's poller registration in line with its
    /// state, and closes it once fully drained.
    fn reconcile(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.done() {
            self.close_conn(token);
            return;
        }
        let desired = conn.desired_interest(self.cap);
        if desired != conn.registered {
            if self
                .poller
                .reregister(conn.stream.as_raw_fd(), token, desired)
                .is_err()
            {
                self.drop_conn(token);
                return;
            }
            conn.registered = desired;
        }
    }

    /// The soonest writer-stall deadline across connections — folded
    /// into the poll timeout so expiry wakes the reactor.
    fn nearest_deadline(&self) -> Option<Instant> {
        self.conns.values().filter_map(|c| c.stall_deadline).min()
    }

    /// Tears down connections whose stall deadline expired: count the
    /// stall, append a terminal typed error after the buffered frames
    /// (framing stays valid mid-frame), attempt one last nonblocking
    /// flush, and close. The buffered replies are dropped *loudly* —
    /// the error frame says so — never silently.
    fn sweep_stalled(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.stall_deadline.is_some_and(|d| d <= now))
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            self.metrics.writer_stalls.inc();
            if let Some(conn) = self.conns.get_mut(&token) {
                let resp = Response::Error {
                    request_id: CONNECTION_REQUEST_ID,
                    code: ErrorCode::Internal,
                    message: format!(
                        "connection stalled for {}s with replies buffered; \
                         dropping {} unsent frame(s) and closing",
                        WRITER_STALL_TIMEOUT.as_secs(),
                        conn.outbuf.len(),
                    ),
                };
                enqueue_frame(conn, &resp);
                // Best-effort: whatever the socket buffer still
                // accepts goes out before the teardown.
                while let Some(front) = conn.outbuf.front() {
                    // lint: allow(panic) — front_pos ≤ front.len() is a loop invariant
                    match conn.stream.write(&front[conn.front_pos..]) {
                        Ok(n) if n > 0 => {
                            conn.front_pos += n;
                            if conn.front_pos == conn.outbuf.front().map(Vec::len).unwrap_or(0) {
                                conn.outbuf.pop_front();
                                conn.front_pos = 0;
                            }
                        }
                        _ => break,
                    }
                }
            }
            self.drop_conn(token);
        }
    }

    /// Graceful close of a fully drained connection.
    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.metrics.conns.dec();
        }
    }

    /// Abrupt teardown (peer unreachable or wedged): buffered state is
    /// discarded with the connection.
    fn drop_conn(&mut self, token: u64) {
        self.close_conn(token);
    }
}

/// Encodes `response` (through the same frame-cap substitution choke
/// point as the threaded writer) and appends it to the connection's
/// write buffer.
fn enqueue_frame(conn: &mut Conn, response: &Response) {
    let payload = response_payload(response);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    conn.outbuf.push_back(frame);
}
