//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! +----------------+---------------------------------------+
//! | len: u32 (LE)  | payload (len bytes)                   |
//! +----------------+---------------------------------------+
//! payload = [ version: u8 | tag: u8 | body ... ]
//! ```
//!
//! All integers are little-endian. `len` counts the payload only and is
//! capped at [`MAX_FRAME_LEN`]; an oversized length is rejected *before*
//! any allocation. The first payload byte is the protocol version
//! ([`PROTOCOL_VERSION`]); a mismatch decodes to
//! [`WireError::BadVersion`], which servers answer with a typed
//! [`ErrorCode::UnsupportedVersion`] response before closing — the
//! connection fails closed, never panics.
//!
//! Version negotiation: a client opens with [`Request::Hello`] carrying
//! the highest version it speaks; the server answers
//! [`Response::HelloOk`] with the version to use (today always `2`) or
//! an `UnsupportedVersion` error — a v1-only client is refused in
//! negotiation, and a stray v1 frame is [`WireError::BadVersion`].
//! Every later frame carries the agreed version in its header.
//!
//! **v2: tagged request ids.** Every [`Request::Query`] carries a
//! client-chosen `request_id: u64`, echoed verbatim on the
//! query-scoped responses ([`Response::Results`], [`Response::Busy`],
//! [`Response::Error`]). This is what makes request *pipelining*
//! possible: a client may keep many queries in flight on one connection
//! and the server may answer them **out of order** — responses are
//! matched by id, not by position. Id `0` ([`CONNECTION_REQUEST_ID`])
//! is reserved for connection-scoped errors (an undecodable frame has
//! no id to echo); clients allocate ids from `1`.
//!
//! **Tracing.** Every query body carries a flags byte; bit 0 is the
//! EXPLAIN flag, which forces tracing for that request and answers it
//! with [`Response::Explained`] — the result ids *plus* the request's
//! span tree as JSON. Unknown flag bits are
//! [`WireError::Malformed`] (fail closed, so a future flag cannot be
//! silently ignored by an old peer). [`Request::Trace`] asks for the
//! most recent sampled traces ([`Response::Trace`]) and — like
//! `Stats` — is answered inline on the connection thread, so it works
//! under saturation.
//!
//! Decoding is strict: truncated bodies are [`WireError::Truncated`],
//! unconsumed trailing bytes are [`WireError::TrailingBytes`], unknown
//! tags are [`WireError::BadTag`], and structurally invalid queries
//! (stray bits in a packed vector, self-loops or duplicate edges in a
//! graph) are [`WireError::Malformed`]. Element counts are validated
//! against the remaining frame length before any buffer is sized, so a
//! hostile count cannot trigger a huge allocation.

use std::fmt;
use std::io::{Read, Write};

use pigeonring_graph::Graph;
use pigeonring_hamming::BitVector;

/// The protocol version this build speaks. v2 added tagged request ids
/// (pipelining); v1 — one un-tagged request/response pair at a time —
/// is no longer served, so a v1 client draws a typed
/// `UnsupportedVersion` in negotiation.
pub const PROTOCOL_VERSION: u8 = 2;

/// The reserved request id for connection-scoped messages: errors the
/// server must send without a query to echo an id from (an undecodable
/// frame, a pre-negotiation violation). Clients allocate query ids
/// starting at `1`, so id `0` is unambiguous.
pub const CONNECTION_REQUEST_ID: u64 = 0;

/// Upper bound on a frame's payload length (4 MiB) — generous for any
/// realistic query, small enough that a corrupt length prefix cannot
/// drive a giant allocation.
pub const MAX_FRAME_LEN: u32 = 4 * 1024 * 1024;

/// Why a frame or message failed to decode. Every variant is a typed,
/// recoverable error: protocol code never panics on remote input.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The stream ended inside a frame, or a body is shorter than its
    /// declared element counts require.
    Truncated,
    /// Declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// Frame header carries an unknown protocol version.
    BadVersion(u8),
    /// Unknown message tag.
    BadTag(u8),
    /// The body decoded fully but left unconsumed bytes.
    TrailingBytes(usize),
    /// The body parsed but describes an invalid value (reason attached).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadTag(t) => write!(f, "unknown message tag 0x{t:02x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message body"),
            WireError::Malformed(why) => write!(f, "malformed message: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// The four query domains the server multiplexes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Hamming distance over packed binary vectors.
    Hamming,
    /// Edit distance over byte strings.
    Edit,
    /// Set similarity (Jaccard) over token sets.
    Set,
    /// Graph edit distance over labeled graphs.
    Graph,
}

impl Domain {
    /// All domains, in wire-tag order.
    pub const ALL: [Domain; 4] = [Domain::Hamming, Domain::Edit, Domain::Set, Domain::Graph];

    /// CLI / artifact name (matches the `repro sweep` domain labels).
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::Hamming => "hamming",
            Domain::Edit => "editdist",
            Domain::Set => "setsim",
            Domain::Graph => "graph",
        }
    }

    /// Parses a CLI / artifact name.
    pub fn parse_name(s: &str) -> Option<Domain> {
        Domain::ALL.into_iter().find(|d| d.as_str() == s)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One thresholded similarity query, tagged by domain, with its
/// per-request search parameters (thresholds fixed at index build time —
/// edit/set/graph — travel implicitly; Hamming's `τ` is per-request).
#[derive(Clone, Debug, PartialEq)]
pub enum DomainQuery {
    /// Hamming search: all records within distance `tau`, chain length
    /// `l`.
    Hamming {
        /// The query vector (must match the dataset's dimensionality).
        query: BitVector,
        /// Distance threshold `τ`.
        tau: u32,
        /// Chain length `l`.
        l: u32,
    },
    /// Edit-distance search with chain length `l` (`τ` is an index
    /// build-time parameter).
    Edit {
        /// The query string.
        query: Vec<u8>,
        /// Chain length `l`.
        l: u32,
    },
    /// Set-similarity search with chain length `l`. Tokens are **raw**
    /// ids (each shard re-ranks into its local frequency order).
    Set {
        /// The raw query token set.
        tokens: Vec<u32>,
        /// Chain length `l`.
        l: u32,
    },
    /// Graph-edit-distance search with chain length `l`.
    Graph {
        /// The query graph.
        query: Graph,
        /// Chain length `l`.
        l: u32,
    },
}

impl DomainQuery {
    /// The domain this query targets.
    pub fn domain(&self) -> Domain {
        match self {
            DomainQuery::Hamming { .. } => Domain::Hamming,
            DomainQuery::Edit { .. } => Domain::Edit,
            DomainQuery::Set { .. } => Domain::Set,
            DomainQuery::Graph { .. } => Domain::Graph,
        }
    }
}

/// A client → server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version negotiation: the highest protocol version the client
    /// speaks. Must be the first frame on a connection.
    Hello {
        /// Highest version the client supports.
        max_version: u8,
    },
    /// One similarity query, tagged with a client-chosen id that the
    /// server echoes on the matching response. Ids let many queries be
    /// in flight per connection (answers may return out of order);
    /// `request_id` must not be [`CONNECTION_REQUEST_ID`].
    Query {
        /// The client-chosen id echoed on this query's response.
        request_id: u64,
        /// The query itself.
        query: DomainQuery,
        /// EXPLAIN mode: forces tracing for this request regardless of
        /// the server's sampling rate and answers with
        /// [`Response::Explained`] (result ids + the span tree)
        /// instead of plain `Results`.
        explain: bool,
    },
    /// Asks for a live metrics snapshot ([`Response::Stats`]). Answered
    /// directly on the connection thread — it never enters the request
    /// queue, so it works even when every lane is saturated. Follows
    /// the same id rules as `Query`: `request_id` must not be
    /// [`CONNECTION_REQUEST_ID`].
    Stats {
        /// The client-chosen id echoed on the snapshot response.
        request_id: u64,
    },
    /// Asks for the most recent sampled traces ([`Response::Trace`]).
    /// Answered inline on the connection thread, exactly like `Stats`,
    /// so traces stay readable while every lane is saturated. Same id
    /// rules as `Query`.
    Trace {
        /// The client-chosen id echoed on the trace response.
        request_id: u64,
    },
}

/// Typed error category carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The client's protocol version is not supported.
    UnsupportedVersion,
    /// The request frame failed to decode.
    Malformed,
    /// The query decoded but cannot run against the loaded dataset
    /// (e.g. wrong vector dimensionality).
    InvalidQuery,
    /// The requested domain has no engine loaded.
    Unavailable,
    /// The server failed internally while executing the query.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::UnsupportedVersion => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::InvalidQuery => 3,
            ErrorCode::Unavailable => 4,
            ErrorCode::Internal => 5,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::UnsupportedVersion),
            2 => Some(ErrorCode::Malformed),
            3 => Some(ErrorCode::InvalidQuery),
            4 => Some(ErrorCode::Unavailable),
            5 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// A server → client message. Query-scoped responses (`Results`,
/// `Busy`, `Error`) echo the request id of the query they answer;
/// connection-scoped errors carry [`CONNECTION_REQUEST_ID`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Version accepted; all further frames use `version`.
    HelloOk {
        /// The negotiated protocol version.
        version: u8,
    },
    /// The query's merged result: global record ids, ascending.
    Results {
        /// Id of the query this answers.
        request_id: u64,
        /// Global record ids within the threshold, ascending.
        ids: Vec<u32>,
    },
    /// Admission control rejected the request: the queried domain's
    /// lane is full. The client may retry; the connection stays open
    /// and other domains' lanes are unaffected.
    Busy {
        /// Id of the rejected query.
        request_id: u64,
    },
    /// A live metrics snapshot answering [`Request::Stats`]. The body
    /// is a self-describing JSON document (machine fingerprint, uptime,
    /// counters/gauges/histograms, recent slow queries) so the schema
    /// can grow without a wire change.
    Stats {
        /// Id of the stats request this answers.
        request_id: u64,
        /// The snapshot document (UTF-8 JSON).
        json: String,
    },
    /// Recent sampled traces answering [`Request::Trace`]. Like
    /// `Stats`, the body is a self-describing JSON document (sampling
    /// rate, dropped-span count, span trees) so the schema can grow
    /// without a wire change.
    Trace {
        /// Id of the trace request this answers.
        request_id: u64,
        /// The trace document (UTF-8 JSON).
        json: String,
    },
    /// An EXPLAIN query's answer: the merged result ids *plus* the
    /// request's own span tree as JSON. Sent instead of `Results` when
    /// the query set its EXPLAIN flag.
    Explained {
        /// Id of the query this answers.
        request_id: u64,
        /// Global record ids within the threshold, ascending.
        ids: Vec<u32>,
        /// The request's span tree (UTF-8 JSON).
        json: String,
    },
    /// Typed failure; the server closes the connection after sending
    /// this for protocol-level errors (`UnsupportedVersion`,
    /// `Malformed` — then `request_id` is [`CONNECTION_REQUEST_ID`])
    /// and keeps it open for per-query errors.
    Error {
        /// Id of the failed query, or [`CONNECTION_REQUEST_ID`] for a
        /// connection-scoped failure.
        request_id: u64,
        /// What category of failure.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The request id this response answers ([`CONNECTION_REQUEST_ID`]
    /// for `HelloOk` and connection-scoped errors).
    pub fn request_id(&self) -> u64 {
        match self {
            Response::HelloOk { .. } => CONNECTION_REQUEST_ID,
            Response::Results { request_id, .. }
            | Response::Busy { request_id }
            | Response::Stats { request_id, .. }
            | Response::Trace { request_id, .. }
            | Response::Explained { request_id, .. }
            | Response::Error { request_id, .. } => *request_id,
        }
    }

    /// The same response re-tagged with `request_id` (`HelloOk`, which
    /// carries no id, is returned unchanged). The dispatcher uses this
    /// to stamp handler-produced responses with the id of the request
    /// they answer.
    pub fn with_request_id(self, id: u64) -> Response {
        match self {
            Response::HelloOk { .. } => self,
            Response::Results { ids, .. } => Response::Results {
                request_id: id,
                ids,
            },
            Response::Busy { .. } => Response::Busy { request_id: id },
            Response::Stats { json, .. } => Response::Stats {
                request_id: id,
                json,
            },
            Response::Trace { json, .. } => Response::Trace {
                request_id: id,
                json,
            },
            Response::Explained { ids, json, .. } => Response::Explained {
                request_id: id,
                ids,
                json,
            },
            Response::Error { code, message, .. } => Response::Error {
                request_id: id,
                code,
                message,
            },
        }
    }
}

// Message tags. Requests are < 0x80, responses ≥ 0x80.
const TAG_HELLO: u8 = 0x01;
const TAG_Q_HAMMING: u8 = 0x02;
const TAG_Q_EDIT: u8 = 0x03;
const TAG_Q_SET: u8 = 0x04;
const TAG_Q_GRAPH: u8 = 0x05;
const TAG_STATS: u8 = 0x06;
const TAG_TRACE: u8 = 0x07;
const TAG_HELLO_OK: u8 = 0x81;
const TAG_RESULTS: u8 = 0x82;
const TAG_BUSY: u8 = 0x83;
const TAG_ERROR: u8 = 0x84;
const TAG_STATS_RESP: u8 = 0x85;
const TAG_TRACE_RESP: u8 = 0x86;
const TAG_EXPLAINED: u8 = 0x87;

/// Query-body flags byte (follows `request_id` in every query tag).
/// Bit 0 is EXPLAIN; the remaining bits are reserved and must be zero.
const QUERY_FLAG_EXPLAIN: u8 = 0x01;

fn encode_query_flags(explain: bool) -> u8 {
    if explain {
        QUERY_FLAG_EXPLAIN
    } else {
        0
    }
}

fn decode_query_flags(r: &mut BodyReader<'_>) -> Result<bool, WireError> {
    let flags = r.u8()?;
    if flags & !QUERY_FLAG_EXPLAIN != 0 {
        return Err(WireError::Malformed("unknown query flags"));
    }
    Ok(flags & QUERY_FLAG_EXPLAIN != 0)
}

// ------------------------------------------------------------- frame IO

/// Writes one frame (`len` prefix + payload) and flushes.
///
/// Refuses payloads over [`MAX_FRAME_LEN`] with `InvalidInput` — the
/// decode-side cap has an encode-side counterpart, so an oversized
/// message (e.g. a huge result set) can never reach the peer as a frame
/// it would have to reject.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean end of
/// stream (connection closed *between* frames); an end of stream inside
/// a frame — even inside the 4-byte length prefix — is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        // lint: allow(panic) — `filled < 4` bounds the range into the 4-byte buffer
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(WireError::Truncated)
            };
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

/// Incremental frame parser for nonblocking readers: feed whatever
/// bytes a readiness event yielded, pull out as many complete frames
/// as those bytes contain. The reactor backend's per-connection state
/// machine is built on this; the cap check mirrors [`read_frame`] —
/// an oversized declared length is rejected from the 4-byte prefix
/// alone, before any payload allocation.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: consumed prefix space is reclaimed
        // once it dominates the buffer, so a long-lived connection's
        // decoder does not grow monotonically.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame payload, if the buffered bytes
    /// contain one. `Ok(None)` means "need more bytes"; an oversized
    /// length prefix is a hard protocol error, detected as soon as the
    /// prefix itself is complete.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        // lint: allow(panic) — `avail >= 4` bounds the 4-byte prefix slice
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .unwrap_or([0; 4]);
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized(len));
        }
        let total = 4 + len as usize;
        if avail < total {
            return Ok(None);
        }
        // lint: allow(panic) — `avail >= total` bounds the payload slice
        let payload = self.buf[self.pos + 4..self.pos + total].to_vec();
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(payload))
    }

    /// True when bytes of an incomplete frame are buffered — at EOF
    /// this is the difference between a clean close and
    /// [`WireError::Truncated`].
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Number of not-yet-consumed buffered bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// --------------------------------------------------- body read / write

/// Append-only little-endian body writer.
struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    fn new(tag: u8) -> Self {
        BodyWriter {
            buf: vec![PROTOCOL_VERSION, tag],
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Strict little-endian body reader: every read is bounds-checked
/// ([`WireError::Truncated`]) and [`BodyReader::finish`] rejects
/// leftovers ([`WireError::TrailingBytes`]).
struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BodyReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        // lint: allow(panic) — the remaining() guard above keeps pos + n in bounds
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        // take(4) returns exactly 4 bytes, so the conversion cannot
        // fail; mapping to Truncated keeps the path panic-free anyway.
        let bytes = self.take(4)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads a `count`-prefixed length, validating that `count * width`
    /// bytes actually remain before the caller sizes a buffer.
    fn checked_count(&mut self, width: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count
            .checked_mul(width)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(WireError::Truncated);
        }
        Ok(count)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Reads and validates the `[version, tag]` header, returning the tag.
fn read_header(r: &mut BodyReader<'_>) -> Result<u8, WireError> {
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    r.u8()
}

// ------------------------------------------------------------ requests

/// Encodes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Hello { max_version } => {
            let mut w = BodyWriter::new(TAG_HELLO);
            w.u8(*max_version);
            w.buf
        }
        Request::Query {
            request_id,
            query,
            explain,
        } => match query {
            DomainQuery::Hamming { query, tau, l } => {
                let mut w = BodyWriter::new(TAG_Q_HAMMING);
                w.u64(*request_id);
                w.u8(encode_query_flags(*explain));
                w.u32(*tau);
                w.u32(*l);
                w.u32(query.dims() as u32);
                w.u32(query.words().len() as u32);
                for word in query.words() {
                    w.u64(*word);
                }
                w.buf
            }
            DomainQuery::Edit { query, l } => {
                let mut w = BodyWriter::new(TAG_Q_EDIT);
                w.u64(*request_id);
                w.u8(encode_query_flags(*explain));
                w.u32(*l);
                w.u32(query.len() as u32);
                w.bytes(query);
                w.buf
            }
            DomainQuery::Set { tokens, l } => {
                let mut w = BodyWriter::new(TAG_Q_SET);
                w.u64(*request_id);
                w.u8(encode_query_flags(*explain));
                w.u32(*l);
                w.u32(tokens.len() as u32);
                for t in tokens {
                    w.u32(*t);
                }
                w.buf
            }
            DomainQuery::Graph { query, l } => {
                let mut w = BodyWriter::new(TAG_Q_GRAPH);
                w.u64(*request_id);
                w.u8(encode_query_flags(*explain));
                w.u32(*l);
                w.u32(query.num_vertices() as u32);
                for &vl in query.vlabels() {
                    w.u32(vl);
                }
                w.u32(query.num_edges() as u32);
                for (u, v, el) in query.edges() {
                    w.u32(u);
                    w.u32(v);
                    w.u32(el);
                }
                w.buf
            }
        },
        Request::Stats { request_id } => {
            let mut w = BodyWriter::new(TAG_STATS);
            w.u64(*request_id);
            w.buf
        }
        Request::Trace { request_id } => {
            let mut w = BodyWriter::new(TAG_TRACE);
            w.u64(*request_id);
            w.buf
        }
    }
}

/// Decodes a frame payload into a request (strict; see module docs).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = BodyReader::new(payload);
    let tag = read_header(&mut r)?;
    let req = match tag {
        TAG_HELLO => Request::Hello {
            max_version: r.u8()?,
        },
        TAG_Q_HAMMING => {
            let request_id = r.u64()?;
            let explain = decode_query_flags(&mut r)?;
            let tau = r.u32()?;
            let l = r.u32()?;
            let dims = r.u32()? as usize;
            let nwords = r.checked_count(8)?;
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(r.u64()?);
            }
            let query = BitVector::from_words(dims, words)
                .ok_or(WireError::Malformed("invalid packed vector"))?;
            Request::Query {
                request_id,
                query: DomainQuery::Hamming { query, tau, l },
                explain,
            }
        }
        TAG_Q_EDIT => {
            let request_id = r.u64()?;
            let explain = decode_query_flags(&mut r)?;
            let l = r.u32()?;
            let len = r.checked_count(1)?;
            let query = r.take(len)?.to_vec();
            Request::Query {
                request_id,
                query: DomainQuery::Edit { query, l },
                explain,
            }
        }
        TAG_Q_SET => {
            let request_id = r.u64()?;
            let explain = decode_query_flags(&mut r)?;
            let l = r.u32()?;
            let count = r.checked_count(4)?;
            let mut tokens = Vec::with_capacity(count);
            for _ in 0..count {
                tokens.push(r.u32()?);
            }
            Request::Query {
                request_id,
                query: DomainQuery::Set { tokens, l },
                explain,
            }
        }
        TAG_Q_GRAPH => {
            let request_id = r.u64()?;
            let explain = decode_query_flags(&mut r)?;
            let l = r.u32()?;
            let nv = r.checked_count(4)?;
            if nv == 0 {
                return Err(WireError::Malformed("graph needs at least one vertex"));
            }
            let mut vlabels = Vec::with_capacity(nv);
            for _ in 0..nv {
                vlabels.push(r.u32()?);
            }
            let ne = r.checked_count(12)?;
            let mut query = Graph::new(vlabels);
            for _ in 0..ne {
                let (u, v, el) = (r.u32()?, r.u32()?, r.u32()?);
                if u == v {
                    return Err(WireError::Malformed("graph self-loop"));
                }
                if u as usize >= nv || v as usize >= nv {
                    return Err(WireError::Malformed("graph edge endpoint out of range"));
                }
                if query.edge_label(u, v).is_some() {
                    return Err(WireError::Malformed("duplicate graph edge"));
                }
                query.add_edge(u, v, el);
            }
            Request::Query {
                request_id,
                query: DomainQuery::Graph { query, l },
                explain,
            }
        }
        TAG_STATS => Request::Stats {
            request_id: r.u64()?,
        },
        TAG_TRACE => Request::Trace {
            request_id: r.u64()?,
        },
        other => return Err(WireError::BadTag(other)),
    };
    r.finish()?;
    Ok(req)
}

// ----------------------------------------------------------- responses

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::HelloOk { version } => {
            let mut w = BodyWriter::new(TAG_HELLO_OK);
            w.u8(*version);
            w.buf
        }
        Response::Results { request_id, ids } => {
            let mut w = BodyWriter::new(TAG_RESULTS);
            w.u64(*request_id);
            w.u32(ids.len() as u32);
            for id in ids {
                w.u32(*id);
            }
            w.buf
        }
        Response::Busy { request_id } => {
            let mut w = BodyWriter::new(TAG_BUSY);
            w.u64(*request_id);
            w.buf
        }
        Response::Stats { request_id, json } => {
            let mut w = BodyWriter::new(TAG_STATS_RESP);
            w.u64(*request_id);
            w.u32(json.len() as u32);
            w.bytes(json.as_bytes());
            w.buf
        }
        Response::Trace { request_id, json } => {
            let mut w = BodyWriter::new(TAG_TRACE_RESP);
            w.u64(*request_id);
            w.u32(json.len() as u32);
            w.bytes(json.as_bytes());
            w.buf
        }
        Response::Explained {
            request_id,
            ids,
            json,
        } => {
            let mut w = BodyWriter::new(TAG_EXPLAINED);
            w.u64(*request_id);
            w.u32(ids.len() as u32);
            for id in ids {
                w.u32(*id);
            }
            w.u32(json.len() as u32);
            w.bytes(json.as_bytes());
            w.buf
        }
        Response::Error {
            request_id,
            code,
            message,
        } => {
            let mut w = BodyWriter::new(TAG_ERROR);
            w.u64(*request_id);
            w.u8(code.to_u8());
            w.u32(message.len() as u32);
            w.bytes(message.as_bytes());
            w.buf
        }
    }
}

/// Decodes a frame payload into a response (strict; see module docs).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = BodyReader::new(payload);
    let tag = read_header(&mut r)?;
    let resp = match tag {
        TAG_HELLO_OK => Response::HelloOk { version: r.u8()? },
        TAG_RESULTS => {
            let request_id = r.u64()?;
            let count = r.checked_count(4)?;
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(r.u32()?);
            }
            Response::Results { request_id, ids }
        }
        TAG_BUSY => Response::Busy {
            request_id: r.u64()?,
        },
        TAG_STATS_RESP => {
            let request_id = r.u64()?;
            let len = r.checked_count(1)?;
            let json = String::from_utf8(r.take(len)?.to_vec())
                .map_err(|_| WireError::Malformed("stats snapshot is not UTF-8"))?;
            Response::Stats { request_id, json }
        }
        TAG_TRACE_RESP => {
            let request_id = r.u64()?;
            let len = r.checked_count(1)?;
            let json = String::from_utf8(r.take(len)?.to_vec())
                .map_err(|_| WireError::Malformed("trace document is not UTF-8"))?;
            Response::Trace { request_id, json }
        }
        TAG_EXPLAINED => {
            let request_id = r.u64()?;
            let count = r.checked_count(4)?;
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(r.u32()?);
            }
            let len = r.checked_count(1)?;
            let json = String::from_utf8(r.take(len)?.to_vec())
                .map_err(|_| WireError::Malformed("trace document is not UTF-8"))?;
            Response::Explained {
                request_id,
                ids,
                json,
            }
        }
        TAG_ERROR => {
            let request_id = r.u64()?;
            let code =
                ErrorCode::from_u8(r.u8()?).ok_or(WireError::Malformed("unknown error code"))?;
            let len = r.checked_count(1)?;
            let message = String::from_utf8(r.take(len)?.to_vec())
                .map_err(|_| WireError::Malformed("error message is not UTF-8"))?;
            Response::Error {
                request_id,
                code,
                message,
            }
        }
        other => return Err(WireError::BadTag(other)),
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write to vec");
        write_frame(&mut buf, b"").expect("write to vec");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_payload_refused_at_write_time() {
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut out = Vec::new();
        let err = write_frame(&mut out, &huge).expect_err("must refuse");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(out.is_empty(), "nothing written for a refused frame");
    }

    #[test]
    fn truncated_length_prefix_fails_closed() {
        let mut r: &[u8] = &[5, 0];
        assert!(matches!(read_frame(&mut r), Err(WireError::Truncated)));
    }

    #[test]
    fn truncated_body_fails_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").expect("write to vec");
        buf.truncate(7); // 4-byte prefix + 3 of 6 body bytes
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::Truncated)));
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::Oversized(n)) if n == MAX_FRAME_LEN + 1
        ));
    }

    #[test]
    fn decoder_reassembles_byte_by_byte_feeds() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"hello").expect("write to vec");
        write_frame(&mut stream, b"").expect("write to vec");
        write_frame(&mut stream, b"worlds").expect("write to vec");
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for b in stream {
            dec.feed(&[b]);
            while let Some(p) = dec.next_frame().expect("valid stream") {
                frames.push(p);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], b"hello");
        assert_eq!(frames[1], b"");
        assert_eq!(frames[2], b"worlds");
        assert!(!dec.has_partial());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_reports_partial_frames() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"abcdef").expect("write to vec");
        let mut dec = FrameDecoder::new();
        dec.feed(&stream[..7]); // prefix + half the body
        assert!(matches!(dec.next_frame(), Ok(None)));
        assert!(dec.has_partial());
        dec.feed(&stream[7..]);
        assert_eq!(
            dec.next_frame().expect("complete now").as_deref(),
            Some(&b"abcdef"[..])
        );
        assert!(!dec.has_partial());
    }

    #[test]
    fn decoder_rejects_oversized_prefix_before_payload_arrives() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::Oversized(n)) if n == MAX_FRAME_LEN + 1
        ));
    }

    #[test]
    fn decoder_handles_many_frames_in_one_feed() {
        let mut stream = Vec::new();
        for i in 0..100u8 {
            write_frame(&mut stream, &[i; 3]).expect("write to vec");
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        for i in 0..100u8 {
            assert_eq!(
                dec.next_frame().expect("valid").as_deref(),
                Some(&[i; 3][..])
            );
        }
        assert!(matches!(dec.next_frame(), Ok(None)));
    }

    #[test]
    fn decoder_compacts_consumed_prefix() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &[7u8; 4096]).expect("write to vec");
        let mut dec = FrameDecoder::new();
        for _ in 0..8 {
            dec.feed(&stream);
            assert!(dec.next_frame().expect("valid").is_some());
        }
        assert_eq!(dec.buffered(), 0);
        // Internal buffer must not have retained all eight frames.
        assert!(dec.buf.len() < 2 * stream.len());
    }

    #[test]
    fn bad_version_rejected() {
        let mut payload = encode_request(&Request::Hello { max_version: 1 });
        payload[0] = 99;
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadVersion(99))
        ));
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::BadVersion(99))
        ));
    }

    #[test]
    fn bad_tag_rejected() {
        let payload = [PROTOCOL_VERSION, 0x7f];
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadTag(0x7f))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = encode_request(&Request::Hello { max_version: 1 });
        payload.push(0);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn hostile_count_cannot_drive_allocation() {
        // A Set query declaring u32::MAX tokens with a 4-byte body.
        let mut w = BodyWriter::new(TAG_Q_SET);
        w.u64(1); // request id
        w.u8(0); // flags
        w.u32(1); // l
        w.u32(u32::MAX); // token count
        w.u32(7); // only one token actually present
        assert!(matches!(decode_request(&w.buf), Err(WireError::Truncated)));
    }

    #[test]
    fn graph_validation() {
        let mk = |edges: &[(u32, u32, u32)]| {
            let mut w = BodyWriter::new(TAG_Q_GRAPH);
            w.u64(1); // request id
            w.u8(0); // flags
            w.u32(1); // l
            w.u32(3); // nv
            for vl in [1u32, 2, 3] {
                w.u32(vl);
            }
            w.u32(edges.len() as u32);
            for &(u, v, el) in edges {
                w.u32(u);
                w.u32(v);
                w.u32(el);
            }
            w.buf
        };
        assert!(decode_request(&mk(&[(0, 1, 9), (1, 2, 9)])).is_ok());
        assert!(matches!(
            decode_request(&mk(&[(1, 1, 9)])),
            Err(WireError::Malformed("graph self-loop"))
        ));
        assert!(matches!(
            decode_request(&mk(&[(0, 3, 9)])),
            Err(WireError::Malformed("graph edge endpoint out of range"))
        ));
        assert!(matches!(
            decode_request(&mk(&[(0, 1, 9), (1, 0, 9)])),
            Err(WireError::Malformed("duplicate graph edge"))
        ));
    }

    #[test]
    fn request_id_helpers_cover_every_variant() {
        assert_eq!(
            Response::HelloOk { version: 2 }.request_id(),
            CONNECTION_REQUEST_ID
        );
        let variants = [
            Response::Results {
                request_id: 9,
                ids: vec![1, 2],
            },
            Response::Busy { request_id: 9 },
            Response::Stats {
                request_id: 9,
                json: "{}".into(),
            },
            Response::Trace {
                request_id: 9,
                json: "{}".into(),
            },
            Response::Explained {
                request_id: 9,
                ids: vec![3],
                json: "{}".into(),
            },
            Response::Error {
                request_id: 9,
                code: ErrorCode::Internal,
                message: "x".into(),
            },
        ];
        for resp in variants {
            assert_eq!(resp.request_id(), 9);
            let retagged = resp.with_request_id(42);
            assert_eq!(retagged.request_id(), 42);
        }
        // HelloOk carries no id; retagging is a no-op.
        let hello = Response::HelloOk { version: 2 }.with_request_id(42);
        assert_eq!(hello, Response::HelloOk { version: 2 });
    }

    #[test]
    fn v1_frame_fails_closed_with_bad_version() {
        let mut payload = encode_request(&Request::Hello { max_version: 2 });
        payload[0] = 1; // a v1-era frame header
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadVersion(1))
        ));
    }

    #[test]
    fn stats_messages_round_trip() {
        let req = Request::Stats { request_id: 17 };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let resp = Response::Stats {
            request_id: 17,
            json: r#"{"counters": {"service.hamming.queries": 3}}"#.into(),
        };
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn stats_response_rejects_bad_utf8_and_hostile_length() {
        // Valid frame, then corrupt the JSON bytes to invalid UTF-8.
        let mut payload = encode_response(&Response::Stats {
            request_id: 1,
            json: "ab".into(),
        });
        let n = payload.len();
        payload[n - 1] = 0xff;
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::Malformed("stats snapshot is not UTF-8"))
        ));
        // Declared length far beyond the body must fail before sizing.
        let mut w = BodyWriter::new(TAG_STATS_RESP);
        w.u64(1);
        w.u32(u32::MAX);
        w.bytes(b"{}");
        assert!(matches!(decode_response(&w.buf), Err(WireError::Truncated)));
        // A trailing byte after the declared JSON is rejected.
        let mut payload = encode_response(&Response::Stats {
            request_id: 1,
            json: "{}".into(),
        });
        payload.push(0);
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn trace_messages_round_trip() {
        let req = Request::Trace { request_id: 23 };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let resp = Response::Trace {
            request_id: 23,
            json: r#"{"traces": []}"#.into(),
        };
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        let resp = Response::Explained {
            request_id: 23,
            ids: vec![1, 5, 9],
            json: r#"{"trace_id": 4, "spans": []}"#.into(),
        };
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn explain_flag_round_trips_on_every_domain() {
        let queries = [
            DomainQuery::Hamming {
                query: BitVector::from_words(64, vec![0x55]).unwrap(),
                tau: 4,
                l: 2,
            },
            DomainQuery::Edit {
                query: b"abc".to_vec(),
                l: 2,
            },
            DomainQuery::Set {
                tokens: vec![1, 2, 3],
                l: 2,
            },
            DomainQuery::Graph {
                query: Graph::new(vec![1, 2]),
                l: 2,
            },
        ];
        for query in queries {
            for explain in [false, true] {
                let req = Request::Query {
                    request_id: 7,
                    query: query.clone(),
                    explain,
                };
                assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
            }
        }
    }

    #[test]
    fn unknown_query_flag_bits_fail_closed() {
        let req = Request::Query {
            request_id: 7,
            query: DomainQuery::Edit {
                query: b"abc".to_vec(),
                l: 2,
            },
            explain: false,
        };
        let mut payload = encode_request(&req);
        // The flags byte sits right after [version, tag, request_id].
        payload[2 + 8] = 0x02;
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Malformed("unknown query flags"))
        ));
    }

    #[test]
    fn trace_response_rejects_bad_utf8_and_hostile_length() {
        let mut payload = encode_response(&Response::Trace {
            request_id: 1,
            json: "ab".into(),
        });
        let n = payload.len();
        payload[n - 1] = 0xff;
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::Malformed("trace document is not UTF-8"))
        ));
        // A hostile id count in an Explained body fails before sizing.
        let mut w = BodyWriter::new(TAG_EXPLAINED);
        w.u64(1);
        w.u32(u32::MAX); // id count
        w.u32(0); // json length
        assert!(matches!(decode_response(&w.buf), Err(WireError::Truncated)));
        // ... and so does a hostile JSON length.
        let mut w = BodyWriter::new(TAG_EXPLAINED);
        w.u64(1);
        w.u32(0); // id count
        w.u32(u32::MAX); // json length
        w.bytes(b"{}");
        assert!(matches!(decode_response(&w.buf), Err(WireError::Truncated)));
    }

    #[test]
    fn domain_names_round_trip() {
        for d in Domain::ALL {
            assert_eq!(Domain::parse_name(d.as_str()), Some(d));
        }
        assert_eq!(Domain::parse_name("nope"), None);
    }
}
