//! Number-for-number reproduction of Example 11 (§6.3).

use crate::content::{char_mask, min_window_bound, window_masks};
use crate::pivotal::min_substring_ed;
use crate::qgram::{prefix_grams, select_pivotal, GramOrder, QGramCollection};
use crate::verify::edit_distance;
use pigeonring_core::viability::{Direction, ThresholdScheme};

const X: &[u8] = b"llabcdefkk";
const Q: &[u8] = b"llabghijkk";

#[test]
fn example_11_prefixes_and_pivotal() {
    // τ = 2, κ = 2, lexicographic gram order. Prefixes are the first
    // κτ + 1 = 5 grams: Px = {ab,bc,cd,de,ef}, Pq = {ab,bg,gh,hi,ij}.
    let c = QGramCollection::build(vec![X.to_vec(), Q.to_vec()], 2, GramOrder::Lexicographic);
    let gx = c.grams(0);
    let px = prefix_grams(gx, 2, 2);
    let gram_str = |pg: &crate::qgram::PositionalGram, s: &[u8]| {
        s[pg.pos as usize..pg.pos as usize + 2].to_vec()
    };
    let px_strs: Vec<Vec<u8>> = px.iter().map(|pg| gram_str(pg, X)).collect();
    assert_eq!(
        px_strs,
        vec![
            b"ab".to_vec(),
            b"bc".to_vec(),
            b"cd".to_vec(),
            b"de".to_vec(),
            b"ef".to_vec()
        ]
    );
    let gq = c.grams(1);
    let pq = prefix_grams(gq, 2, 2);
    let pq_strs: Vec<Vec<u8>> = pq.iter().map(|pg| gram_str(pg, Q)).collect();
    assert_eq!(
        pq_strs,
        vec![
            b"ab".to_vec(),
            b"bg".to_vec(),
            b"gh".to_vec(),
            b"hi".to_vec(),
            b"ij".to_vec()
        ]
    );

    // ef precedes ij in the order, so x's side supplies the m = 3 pivotal
    // grams: ab, cd, ef.
    assert!(px.last().unwrap().id < pq.last().unwrap().id);
    let piv = select_pivotal(px, 2, 2).unwrap();
    let piv_strs: Vec<Vec<u8>> = piv.iter().map(|pg| gram_str(pg, X)).collect();
    assert_eq!(
        piv_strs,
        vec![b"ab".to_vec(), b"cd".to_vec(), b"ef".to_vec()]
    );

    // f(x, q) = 4 > τ: a pivotal-prefix-filter false positive (ab matches
    // exactly).
    assert_eq!(edit_distance(X, Q), 4);
}

#[test]
fn example_11_content_bound_filters_x() {
    // Ring at l = 2: b0 = 0 (exact match of ab); b1 (cd) is lower-bounded
    // by the bit-vector distance to substrings ab, bg, gh, hi, ij — all 4
    // bits apart, so b1 ≥ 2. b0 + b1 ≥ 2 > l·τ/m = 4/3 ⇒ x is filtered.
    let tau = 2usize;
    let m = tau + 1;
    let q_masks = window_masks(Q, 2);
    let cd = char_mask(b"cd");
    // cd sits at position 4 in x; window [2, 6].
    let b1 = min_window_bound(cd, &q_masks, 4 - tau as i64, 4 + tau as i64);
    assert_eq!(b1, 2);

    let scheme = ThresholdScheme::uniform(tau as i64, m);
    // Chain (b0, b1) = (0, 2): prefix l' = 1 viable (0 ≤ 2/3 rounds to
    // exact test 3·0 ≤ 2), prefix l' = 2 non-viable (3·2 > 2·2).
    assert!(scheme.chain_viable(0, 0, 1, Direction::Le));
    assert!(!scheme.chain_viable(2, 0, 2, Direction::Le));
}

#[test]
fn example_11_alignment_filter_would_need_exact_dps() {
    // The baseline's alignment filter computes exact min edit distances:
    // cd → substrings of "abghij" costs 1 substitution+shift context; the
    // point of the example is that Ring's bit-vector bound (2) already
    // exceeds the quota without any DP. Check the exact values are
    // consistent with the bound (bound ≤ exact).
    let exact_cd = min_substring_ed(b"cd", Q, 4 - 2, 4 + 2 + 2);
    let q_masks = window_masks(Q, 2);
    let bound_cd = min_window_bound(char_mask(b"cd"), &q_masks, 2, 6);
    assert!(bound_cd <= exact_cd);
    assert!(exact_cd >= 2);
}

#[test]
fn example_11_end_to_end() {
    // Index x alongside a true near-duplicate of q; at τ = 2 the search
    // must return only the near-duplicate, and Ring at l = 2 must not
    // even verify x.
    let near = b"llabghijkx".to_vec(); // ed(near, q) = 1
    let c = QGramCollection::build(vec![X.to_vec(), near.clone()], 2, GramOrder::Lexicographic);
    let mut ring = crate::ring::RingEdit::build(c, 2);
    let (res, stats) = ring.search(Q, 2);
    assert_eq!(res, vec![1]);
    assert_eq!(stats.results, 1);
    // x (id 0) was filtered before verification.
    assert_eq!(stats.candidates, 1);
}
