//! q-gram extraction, the global gram dictionary, and the global order.
//!
//! A string of length `n` has `n − κ + 1` positional q-grams (substring,
//! start position). Grams are interned into dense `u32` ids whose natural
//! order **is** the global order — by increasing collection frequency
//! (ties by gram bytes) or, for the paper's worked examples,
//! lexicographically.
//!
//! The interning table lives in a [`GramDictionary`], shared (via `Arc`)
//! by every [`QGramCollection`] built from it. One dictionary built over
//! the *whole corpus* makes the frequency order — and hence prefix and
//! pivotal selection — identical in every shard of a partitioned
//! collection, which is what lets the service layer compute a query's
//! gram plan once and reuse it across shards
//! (`ShardedIndex::build_global` in `pigeonring-service`).
//! [`QGramCollection::build`] keeps the legacy single-collection path:
//! it builds a private dictionary from its own strings.

use std::sync::Arc;

use pigeonring_core::fxhash::FxHashMap;

/// Which global order gram ids encode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GramOrder {
    /// Increasing collection frequency, ties by gram bytes (production
    /// default, as in Pivotal \[28\]).
    Frequency,
    /// Lexicographic by gram bytes (used by the paper's Example 11).
    Lexicographic,
}

/// A positional q-gram: interned gram id (rank) and start position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PositionalGram {
    /// Interned gram id; smaller id = earlier in the global order.
    pub id: u32,
    /// Start position in the source string.
    pub pos: u32,
}

/// The gram interning table: gram bytes → dense `u32` id, where the id
/// order is the global order (by corpus frequency or lexicographic).
///
/// Built once over a corpus with [`GramDictionary::build`]; shard-local
/// collections then attach to it with
/// [`QGramCollection::with_dictionary`], so every shard agrees on gram
/// ids, the frequency order, and therefore prefix/pivotal selection.
#[derive(Debug)]
pub struct GramDictionary {
    kappa: usize,
    /// gram bytes → interned id.
    intern: FxHashMap<Box<[u8]>, u32>,
}

impl GramDictionary {
    /// Builds the dictionary over `strings`, interning grams of length
    /// `kappa` under the given order.
    ///
    /// # Panics
    /// Panics if `kappa == 0`.
    pub fn build(strings: &[Vec<u8>], kappa: usize, order: GramOrder) -> Self {
        assert!(kappa > 0, "q-gram length must be positive");
        let mut freq: FxHashMap<Box<[u8]>, u64> = FxHashMap::default();
        for s in strings {
            if s.len() >= kappa {
                for w in s.windows(kappa) {
                    *freq.entry(w.into()).or_insert(0) += 1;
                }
            }
        }
        let mut keys: Vec<(&Box<[u8]>, &u64)> = freq.iter().collect();
        match order {
            GramOrder::Frequency => keys.sort_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0))),
            GramOrder::Lexicographic => keys.sort_by(|a, b| a.0.cmp(b.0)),
        }
        let intern: FxHashMap<Box<[u8]>, u32> = keys
            .into_iter()
            .enumerate()
            .map(|(i, (k, _))| (k.clone(), i as u32))
            .collect();
        GramDictionary { kappa, intern }
    }

    /// The gram length `κ`.
    pub fn kappa(&self) -> usize {
        self.kappa
    }

    /// Number of distinct interned grams.
    pub fn num_grams(&self) -> usize {
        self.intern.len()
    }

    /// The interned id of `gram`, if the corpus contains it.
    pub fn id(&self, gram: &[u8]) -> Option<u32> {
        self.intern.get(gram).copied()
    }

    /// Interns an external string's grams (query path) into `out`
    /// (cleared first), sorted by `(id, pos)` — i.e. global order. Grams
    /// unseen in the corpus get fresh ids beyond the interned range —
    /// they sort after every known gram and can never match a posting.
    pub fn query_grams_into(&self, s: &[u8], out: &mut Vec<PositionalGram>) {
        out.clear();
        if s.len() < self.kappa {
            return;
        }
        let base = self.intern.len() as u32;
        let mut fresh: FxHashMap<&[u8], u32> = FxHashMap::default();
        out.extend(s.windows(self.kappa).enumerate().map(|(pos, w)| {
            let id = self.intern.get(w).copied().unwrap_or_else(|| {
                let next = base + fresh.len() as u32;
                *fresh.entry(w).or_insert(next)
            });
            PositionalGram {
                id,
                pos: pos as u32,
            }
        }));
        out.sort_by_key(|pg| (pg.id, pg.pos));
    }
}

/// A collection of strings with interned q-grams over a (possibly
/// shared) [`GramDictionary`].
pub struct QGramCollection {
    strings: Vec<Vec<u8>>,
    dict: Arc<GramDictionary>,
    /// Per-string grams sorted by (id, pos) — i.e. global order.
    grams: Vec<Vec<PositionalGram>>,
}

impl QGramCollection {
    /// Builds the collection with a private dictionary interned from
    /// these strings alone (the legacy single-collection path; sharded
    /// builds share one corpus-wide dictionary via
    /// [`QGramCollection::with_dictionary`]).
    ///
    /// # Panics
    /// Panics if `kappa == 0`.
    pub fn build(strings: Vec<Vec<u8>>, kappa: usize, order: GramOrder) -> Self {
        let dict = Arc::new(GramDictionary::build(&strings, kappa, order));
        QGramCollection::with_dictionary(strings, dict)
    }

    /// Builds the collection over a shared dictionary: every gram id —
    /// and the frequency order behind prefix/pivotal selection — comes
    /// from `dict`, so collections of different shards of one corpus
    /// agree on all query-side structures.
    ///
    /// # Panics
    /// Panics if any string contains a gram absent from `dict`: the
    /// dictionary must be built over a superset of these strings (the
    /// whole corpus), or matching records could silently be missed.
    pub fn with_dictionary(strings: Vec<Vec<u8>>, dict: Arc<GramDictionary>) -> Self {
        let kappa = dict.kappa();
        let grams = strings
            .iter()
            .map(|s| {
                let mut g: Vec<PositionalGram> = if s.len() >= kappa {
                    s.windows(kappa)
                        .enumerate()
                        .map(|(pos, w)| PositionalGram {
                            id: dict.id(w).expect(
                                "record gram missing from the dictionary — build the \
                                 GramDictionary over the full corpus",
                            ),
                            pos: pos as u32,
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                g.sort_by_key(|pg| (pg.id, pg.pos));
                g
            })
            .collect();
        QGramCollection {
            strings,
            dict,
            grams,
        }
    }

    /// The shared gram dictionary.
    pub fn dictionary(&self) -> &Arc<GramDictionary> {
        &self.dict
    }

    /// The gram length `κ`.
    pub fn kappa(&self) -> usize {
        self.dict.kappa()
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// String `id`.
    pub fn string(&self, id: usize) -> &[u8] {
        &self.strings[id]
    }

    /// All strings.
    pub fn strings(&self) -> &[Vec<u8>] {
        &self.strings
    }

    /// String `id`'s grams in global order.
    pub fn grams(&self, id: usize) -> &[PositionalGram] {
        &self.grams[id]
    }

    /// Interns an external string's grams (query path); see
    /// [`GramDictionary::query_grams_into`]. Allocates per call — the
    /// engines' planning path reuses a scratch buffer via the `_into`
    /// variant instead.
    pub fn query_grams(&self, s: &[u8]) -> Vec<PositionalGram> {
        let mut out = Vec::new();
        self.dict.query_grams_into(s, &mut out);
        out
    }
}

/// The prefix of a gram list: the first `κτ + 1` grams in global order,
/// extended through ties on the last id so that "every gram with id ≤ the
/// last prefix id" is in the prefix (required by the pivotal-filter
/// completeness argument when duplicate grams exist).
pub fn prefix_grams(grams: &[PositionalGram], kappa: usize, tau: usize) -> &[PositionalGram] {
    let want = kappa * tau + 1;
    if grams.len() <= want {
        return grams;
    }
    let mut end = want;
    let last_id = grams[want - 1].id;
    while end < grams.len() && grams[end].id == last_id {
        end += 1;
    }
    &grams[..end]
}

/// Greedy selection of `τ + 1` pairwise-disjoint (non-overlapping)
/// pivotal grams from a prefix, by position. Returns `None` when fewer
/// than `τ + 1` disjoint grams exist (short strings — such records carry
/// no pivotal guarantee and must remain always-candidates).
///
/// Any `κτ + 1` grams with distinct positions contain `τ + 1` disjoint
/// ones: sorting by position and picking greedily skips at most `κ − 1`
/// overlapping grams per pick.
pub fn select_pivotal(
    prefix: &[PositionalGram],
    kappa: usize,
    tau: usize,
) -> Option<Vec<PositionalGram>> {
    let mut by_pos: Vec<PositionalGram> = prefix.to_vec();
    by_pos.sort_by_key(|pg| pg.pos);
    let mut picked = Vec::with_capacity(tau + 1);
    let mut next_free = 0i64;
    for pg in by_pos {
        if (pg.pos as i64) >= next_free {
            picked.push(pg);
            next_free = pg.pos as i64 + kappa as i64;
            if picked.len() == tau + 1 {
                return Some(picked);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<Vec<u8>> {
        v.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn grams_are_extracted_with_positions() {
        let c = QGramCollection::build(strs(&["abcd"]), 2, GramOrder::Lexicographic);
        let g = c.grams(0);
        assert_eq!(g.len(), 3);
        // Lexicographic: ab < bc < cd.
        assert_eq!(g[0].pos, 0);
        assert_eq!(g[1].pos, 1);
        assert_eq!(g[2].pos, 2);
        assert!(g[0].id < g[1].id && g[1].id < g[2].id);
    }

    #[test]
    fn frequency_order_puts_rare_grams_first() {
        // "zz" appears once, "ab" three times.
        let c = QGramCollection::build(strs(&["abab", "abzz"]), 2, GramOrder::Frequency);
        let g = c.grams(1); // grams: ab, bz, zz

        // The rarest grams of string 1 are bz and zz (freq 1); ab (freq 3)
        // must sort last in the global order.
        let last = g[g.len() - 1];
        assert_eq!(
            &c.string(1)[last.pos as usize..last.pos as usize + 2],
            b"ab"
        );
        let first = g[0];
        assert_eq!(
            &c.string(1)[first.pos as usize..first.pos as usize + 2],
            b"bz"
        );
    }

    #[test]
    fn short_strings_have_no_grams() {
        let c = QGramCollection::build(strs(&["a", "ab"]), 3, GramOrder::Frequency);
        assert!(c.grams(0).is_empty());
        assert!(c.grams(1).is_empty());
    }

    #[test]
    fn query_grams_handle_unknown_grams() {
        let c = QGramCollection::build(strs(&["abcd"]), 2, GramOrder::Lexicographic);
        let qg = c.query_grams(b"abxy");
        assert_eq!(qg.len(), 3);
        // "ab" is known, "bx"/"xy" are fresh and sort after known ids.
        let known_max = 2u32; // ab, bc, cd interned
        assert!(qg.iter().filter(|g| g.id > known_max).count() == 2);
    }

    #[test]
    fn shared_dictionary_assigns_identical_ids_across_collections() {
        // A corpus split into two "shards" over one dictionary: both
        // halves (and queries against either) see the same gram ids.
        let corpus = strs(&["abab", "abzz", "zzzz", "baba"]);
        let dict = Arc::new(GramDictionary::build(&corpus, 2, GramOrder::Frequency));
        let left = QGramCollection::with_dictionary(corpus[..2].to_vec(), Arc::clone(&dict));
        let right = QGramCollection::with_dictionary(corpus[2..].to_vec(), Arc::clone(&dict));
        // "ab" occurs in both shards; its id must agree.
        let ab = dict.id(b"ab").expect("ab interned");
        assert!(left.grams(0).iter().any(|pg| pg.id == ab));
        assert_eq!(left.query_grams(b"ab"), right.query_grams(b"ab"));
        // The dictionary's frequency order is corpus-wide: "ab" (freq 3)
        // sorts after "bz" (freq 1) in *both* shards' query views.
        let bz = dict.id(b"bz").expect("bz interned");
        assert!(bz < ab, "corpus-rare gram precedes corpus-common gram");
    }

    #[test]
    #[should_panic(expected = "record gram missing from the dictionary")]
    fn foreign_record_grams_fail_loudly() {
        let corpus = strs(&["abcd"]);
        let dict = Arc::new(GramDictionary::build(&corpus, 2, GramOrder::Frequency));
        let _ = QGramCollection::with_dictionary(strs(&["wxyz"]), dict);
    }

    #[test]
    fn prefix_extends_through_ties() {
        // "aaaa" has grams aa@0, aa@1, aa@2 — all the same id. With
        // κτ+1 = 2 the prefix must extend to all three.
        let c = QGramCollection::build(strs(&["aaaa"]), 1, GramOrder::Lexicographic);
        let g = c.grams(0);
        let p = prefix_grams(g, 1, 1);
        assert_eq!(p.len(), 4); // 1·1+1 = 2 extended through the tie
    }

    #[test]
    fn pivotal_selection_is_disjoint_and_sized() {
        let c = QGramCollection::build(strs(&["llabcdefkk"]), 2, GramOrder::Lexicographic);
        let g = c.grams(0);
        let p = prefix_grams(g, 2, 2);
        assert_eq!(p.len(), 5); // κτ+1 = 5: ab, bc, cd, de, ef
        let piv = select_pivotal(p, 2, 2).unwrap();
        assert_eq!(piv.len(), 3);
        // Disjoint positions.
        for w in piv.windows(2) {
            assert!(w[1].pos >= w[0].pos + 2);
        }
        // Example 11: pivotal grams are ab@2, cd@4, ef@6.
        assert_eq!(
            piv.iter().map(|pg| pg.pos).collect::<Vec<_>>(),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn pivotal_selection_fails_on_short_strings() {
        let c = QGramCollection::build(strs(&["abc"]), 2, GramOrder::Lexicographic);
        let g = c.grams(0);
        let p = prefix_grams(g, 2, 3); // τ = 3 needs 4 disjoint bigrams
        assert!(select_pivotal(p, 2, 3).is_none());
    }
}
