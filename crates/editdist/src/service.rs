//! [`SearchEngine`] adapter: plugs [`RingEdit`] into the
//! `pigeonring-service` sharded query layer.
//!
//! Note that sharding changes each shard's *gram frequency order* (and
//! hence prefix/pivotal selection), so per-shard candidate counts differ
//! from the unsharded engine's — but verification is exact edit
//! distance, so the merged *result set* is always identical.

use crate::pivotal::EditStats;
use crate::ring::{EditScratch, RingEdit};
use pigeonring_service::{MergeStats, SearchEngine};

/// Per-batch parameters for edit-distance search through the service
/// layer (`τ` is fixed at index-build time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EditParams {
    /// Chain length `l` (clamped to `[1..τ+1]` by the engine).
    pub l: usize,
}

impl MergeStats for EditStats {
    fn merge(&mut self, other: &Self) {
        EditStats::merge(self, other);
    }
}

impl SearchEngine for RingEdit {
    type Query = Vec<u8>;
    type Params = EditParams;
    type Stats = EditStats;
    type Scratch = EditScratch;

    fn num_records(&self) -> usize {
        self.index().collection().len()
    }

    fn search_into(
        &self,
        scratch: &mut EditScratch,
        query: &Vec<u8>,
        params: &EditParams,
        out: &mut Vec<u32>,
    ) -> EditStats {
        let (ids, stats) = self.search_with(scratch, query, params.l);
        out.extend(ids);
        stats
    }
}
