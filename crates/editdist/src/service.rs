//! [`SearchEngine`] adapter: plugs [`RingEdit`] into the
//! `pigeonring-service` sharded query layer.
//!
//! The plan ([`EditPlan`]) carries the query's interned prefix, pivotal
//! grams, and character masks. With the legacy per-shard build each
//! shard interns against its own gram dictionary, so plans are
//! shard-local (the default `search_into` path). With a dictionary-first
//! build (`ShardedIndex::build_global` over one corpus-wide
//! [`GramDictionary`](crate::qgram::GramDictionary)) the global
//! frequency order makes prefix/pivotal selection identical in every
//! shard, so the service layer plans each query once and every shard
//! executes the same plan.
//!
//! Either way verification is exact edit distance, so the merged
//! *result set* is identical for any shard count and either build path.

use crate::pivotal::EditStats;
use crate::ring::{EditPlan, EditScratch, RingEdit};
use pigeonring_service::{MergeStats, SearchEngine};

/// Per-batch parameters for edit-distance search through the service
/// layer (`τ` is fixed at index-build time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EditParams {
    /// Chain length `l` (clamped to `[1..τ+1]` by the engine).
    pub l: usize,
}

impl MergeStats for EditStats {
    fn merge(&mut self, other: &Self) {
        EditStats::merge(self, other);
    }

    fn visit(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        emit("cand1", self.cand1 as u64);
        emit("cand2", self.cand2 as u64);
        emit("candidates", self.candidates as u64);
        emit("results", self.results as u64);
        emit("postings_scanned", self.postings_scanned as u64);
        emit("boxes_checked", self.boxes_checked as u64);
        emit("skipped_by_corollary2", self.skipped_by_corollary2 as u64);
    }
}

impl SearchEngine for RingEdit {
    type Query = Vec<u8>;
    type Params = EditParams;
    type Stats = EditStats;
    type Scratch = EditScratch;
    type Plan = EditPlan;

    fn num_records(&self) -> usize {
        self.index().collection().len()
    }

    fn plan(&self, scratch: &mut EditScratch, query: &Vec<u8>) -> EditPlan {
        self.plan_query(scratch, query)
    }

    fn search_planned(
        &self,
        scratch: &mut EditScratch,
        plan: &EditPlan,
        query: &Vec<u8>,
        params: &EditParams,
        out: &mut Vec<u32>,
    ) -> EditStats {
        let (ids, stats) = self.search_with_plan(scratch, plan, query, params.l);
        out.extend(ids);
        stats
    }
}
