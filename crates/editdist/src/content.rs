//! The content-based filter \[114\] used for Ring box lower bounds (§6.3).
//!
//! Each string maps to a 64-bit symbol-presence mask (`bit σ mod 64` set
//! iff symbol `σ` occurs). For any strings `a`, `b`:
//! `ed(a, b) ≤ t` only if `H(mask_a, mask_b) ≤ 2t`, so
//! `ed(a, b) ≥ ⌈H/2⌉` — an edit operation changes at most two mask bits
//! (one symbol's last occurrence removed, another's first added).
//! Folding symbols onto 64 bits only merges bits, which can only *lower*
//! `H`; the bound stays valid.
//!
//! The Ring box `b_i` is the minimum edit distance from pivotal gram `i`
//! to any length-`κ` substring of the other string within the ±τ position
//! window; [`min_window_bound`] lower-bounds it by minimizing `⌈H/2⌉` over
//! the window's masks, at a cost of one XOR+popcount per position
//! (`O(κ + τ)` per box instead of the alignment filter's `O(κ² + κτ)`).

/// Symbol-presence mask of a byte string.
#[inline]
pub fn char_mask(s: &[u8]) -> u64 {
    let mut m = 0u64;
    for &b in s {
        m |= 1u64 << (b % 64);
    }
    m
}

/// Masks of every length-`kappa` window of `s` (empty when
/// `s.len() < kappa`). O(n·κ) worst case, O(n) typical via incremental
/// occurrence counts.
pub fn window_masks(s: &[u8], kappa: usize) -> Vec<u64> {
    if s.len() < kappa {
        return Vec::new();
    }
    let n = s.len() - kappa + 1;
    let mut out = Vec::with_capacity(n);
    // Incremental: per-bit occurrence counts within the window.
    let mut counts = [0u16; 64];
    let mut mask = 0u64;
    for (i, &b) in s.iter().enumerate() {
        let bit = b % 64;
        counts[bit as usize] += 1;
        mask |= 1u64 << bit;
        if i + 1 >= kappa {
            out.push(mask);
            let out_bit = s[i + 1 - kappa] % 64;
            counts[out_bit as usize] -= 1;
            if counts[out_bit as usize] == 0 {
                mask &= !(1u64 << out_bit);
            }
        }
    }
    out
}

/// `⌈H(a, b)/2⌉`: the content-filter lower bound on `ed` between the two
/// masked strings.
#[inline]
pub fn mask_lower_bound(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones().div_ceil(2)
}

/// Minimum content lower bound of `gram_mask` against the window masks in
/// positions `[lo, hi]` (clamped; `masks[p]` is the mask of the substring
/// starting at `p`). Returns a large sentinel when the window is empty so
/// an impossible alignment makes the chain non-viable.
pub fn min_window_bound(gram_mask: u64, masks: &[u64], lo: i64, hi: i64) -> u32 {
    let lo = lo.max(0) as usize;
    if masks.is_empty() || lo >= masks.len() || hi < lo as i64 {
        return u32::MAX / 4;
    }
    let hi = (hi as usize).min(masks.len() - 1);
    masks[lo..=hi]
        .iter()
        .map(|&m| mask_lower_bound(gram_mask, m))
        .min()
        .unwrap_or(u32::MAX / 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::edit_distance;

    #[test]
    fn char_mask_sets_distinct_bits_for_letters() {
        let m = char_mask(b"abc");
        assert_eq!(m.count_ones(), 3);
        assert_eq!(char_mask(b"aabbcc"), m);
    }

    #[test]
    fn window_masks_match_direct_computation() {
        let s = b"abcabcxyz";
        for kappa in 1..=4usize {
            let got = window_masks(s, kappa);
            let expect: Vec<u64> = s.windows(kappa).map(char_mask).collect();
            assert_eq!(got, expect, "kappa={kappa}");
        }
    }

    #[test]
    fn bound_never_exceeds_edit_distance() {
        let pairs: [(&[u8], &[u8]); 6] = [
            (b"abcd", b"abcd"),
            (b"abcd", b"abce"),
            (b"abcd", b"wxyz"),
            (b"hello", b"help"),
            (b"aaaa", b"aabb"),
            (b"ab", b"ba"),
        ];
        for (a, b) in pairs {
            let bound = mask_lower_bound(char_mask(a), char_mask(b));
            let ed = edit_distance(a, b);
            assert!(bound <= ed, "{:?} vs {:?}: bound {bound} > ed {ed}", a, b);
        }
    }

    #[test]
    fn example_11_bit_vectors() {
        // Example 11: cd vs each of ab, bg, gh, hi, ij differs by 4 mask
        // bits, so the lower bound is 2 everywhere in the window.
        let cd = char_mask(b"cd");
        for s in [b"ab", b"bg", b"gh", b"hi", b"ij"] {
            assert_eq!((cd ^ char_mask(s)).count_ones(), 4, "{s:?}");
            assert_eq!(mask_lower_bound(cd, char_mask(s)), 2);
        }
    }

    #[test]
    fn min_window_bound_clamps_ranges() {
        let masks = window_masks(b"llabghijkk", 2);
        let cd = char_mask(b"cd");
        // Window [2, 6] covers ab, bg, gh, hi, ij: min bound 2.
        assert_eq!(min_window_bound(cd, &masks, 2, 6), 2);
        // Out-of-range windows return the sentinel.
        assert!(min_window_bound(cd, &masks, 100, 120) > 1000);
        assert!(min_window_bound(cd, &masks, 5, 2) > 1000);
        // Negative lo clamps to 0.
        let ll = char_mask(b"ll");
        assert_eq!(min_window_bound(ll, &masks, -3, 0), 0);
    }
}
