//! Edit distance computation: full DP (reference), the original
//! cell-at-a-time banded verification (kept as the differential-testing
//! reference), and the vectorized banded kernel (Ukkonen's `O(τ·n)`
//! band restructured into branchless u32-lane batches).
//!
//! The vectorized kernel splits each band row into two passes:
//!
//! 1. a **lane pass** computing `tmp[k] = min(sub, del)` — substitution
//!    and deletion read only the *previous* row, so the whole band row
//!    is elementwise and batches over u32 lanes (8 at a time; with the
//!    `simd` cargo feature an explicit AVX2 path runs it in one
//!    `vpminud` chain per 8 lanes, runtime-gated behind
//!    `is_x86_feature_detected!`);
//! 2. a sequential **insert scan** `cur[k] = min(tmp[k], cur[k−1] + 1)`
//!    — the only loop-carried dependency, a cheap min-plus prefix scan.
//!
//! Per-cell `j`-range branches are hoisted into one `[klo, khi]` clamp
//! per row, so the inner loops are branch-free. All three
//! implementations return bit-identical `Option<u32>` values (the CI
//! `kernel-differential` job proves it on random inputs), and the
//! early-abandon contract — `None` as soon as an entire band row
//! exceeds `τ` — is preserved row-for-row.

/// Full dynamic-programming edit distance (Levenshtein). `O(|a|·|b|)`;
/// reference implementation for tests and tiny inputs.
pub fn edit_distance(a: &[u8], b: &[u8]) -> u32 {
    if a.is_empty() {
        return b.len() as u32;
    }
    let mut row: Vec<u32> = (0..=b.len() as u32).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i as u32 + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = diag + u32::from(ca != cb);
            diag = row[j + 1];
            row[j + 1] = sub.min(row[j] + 1).min(diag + 1);
        }
    }
    row[b.len()]
}

/// Values outside the band (or not yet computed) — far above any real
/// distance, with headroom so `BIG + O(n)` cannot overflow.
const BIG: u32 = u32::MAX / 4;

/// Banded verification: returns `Some(ed)` iff `ed(a, b) ≤ tau`,
/// visiting only the `2τ + 1` diagonal band and abandoning as soon as
/// the entire band row exceeds `tau`.
///
/// This is the vectorized kernel (see the module docs); the original
/// cell-at-a-time loop survives as
/// [`edit_distance_within_reference`] and the always-compiled scalar
/// lane pass as [`edit_distance_within_banded`].
pub fn edit_distance_within(a: &[u8], b: &[u8], tau: u32) -> Option<u32> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if lanes_avx2::available() {
        return banded_impl(a, b, tau, lanes_avx2::lane_pass);
    }
    banded_impl(a, b, tau, lane_pass_scalar)
}

/// The vectorized band kernel restricted to the always-compiled scalar
/// u32-lane pass (no AVX2 even when the `simd` feature is on) — the
/// "batched" tier of the scalar/batched/AVX2 differential gate.
pub fn edit_distance_within_banded(a: &[u8], b: &[u8], tau: u32) -> Option<u32> {
    banded_impl(a, b, tau, lane_pass_scalar)
}

/// The original cell-at-a-time banded loop, kept verbatim as the
/// differential-testing reference for the vectorized kernel.
pub fn edit_distance_within_reference(a: &[u8], b: &[u8], tau: u32) -> Option<u32> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > tau as usize {
        return None;
    }
    if n == 0 {
        return Some(m as u32); // m ≤ τ from the length check
    }
    if m == 0 {
        return Some(n as u32);
    }
    let t = tau as i64;
    // dp[j] for j in the band [i − τ, i + τ], offset-indexed.
    let width = (2 * t + 1) as usize;
    let mut prev = vec![BIG; width + 2];
    let mut cur = vec![BIG; width + 2];
    // Row 0: dp[0][j] = j for j ≤ τ. Band cell k represents j = 0 − τ + k.
    for k in 0..width {
        let j = k as i64 - t;
        if (0..=m as i64).contains(&j) {
            prev[k + 1] = j as u32;
        }
    }
    for i in 1..=n {
        cur.fill(BIG);
        let mut row_min = BIG;
        for k in 0..width {
            let j = i as i64 + k as i64 - t;
            if j < 0 || j > m as i64 {
                continue;
            }
            let j = j as usize;
            let best = if j == 0 {
                i as u32
            } else {
                // prev row, same diagonal offset shifts by one because the
                // band is centered on i: prev cell for (i−1, j−1) is k,
                // for (i−1, j) is k+1; current (i, j−1) is k−1... using
                // the offset-by-one storage (index k+1 = offset k).
                let sub = prev[k + 1].saturating_add(u32::from(a[i - 1] != b[j - 1]));
                let del = prev[k + 2].saturating_add(1); // (i−1, j)
                let ins = if k > 0 { cur[k].saturating_add(1) } else { BIG }; // (i, j−1)
                sub.min(del).min(ins)
            };
            cur[k + 1] = best;
            row_min = row_min.min(best);
        }
        if row_min > tau {
            return None; // every band cell exceeds τ: abandon
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    let k = m as i64 - n as i64 + t;
    debug_assert!((0..width as i64).contains(&k));
    let ed = prev[k as usize + 1];
    (ed <= tau).then_some(ed)
}

/// One band row's elementwise pass: `tmp[x] = min(p1[x] + (ca != brow[x]),
/// p2[x] + 1)` for every lane `x`. `p1`/`p2` are the previous row at
/// diagonal offsets 0 and +1; all slices share `brow.len()` live lanes.
type LanePass = fn(tmp: &mut [u32], brow: &[u8], p1: &[u32], p2: &[u32], ca: u8);

/// Scalar u32-lane pass, written as a flat elementwise loop over the
/// zipped lanes so LLVM batches it (SSE2 baseline: 4 lanes per step).
fn lane_pass_scalar(tmp: &mut [u32], brow: &[u8], p1: &[u32], p2: &[u32], ca: u8) {
    for (((t, &cb), &q1), &q2) in tmp.iter_mut().zip(brow).zip(p1).zip(p2) {
        let sub = q1 + u32::from(ca != cb);
        let del = q2 + 1;
        *t = sub.min(del);
    }
}

/// Shared band-row driver for every lane-pass backend. Values stored in
/// the band never exceed `BIG + i`, so plain `+` replaces the
/// reference's `saturating_add` without changing any value.
fn banded_impl(a: &[u8], b: &[u8], tau: u32, lane_pass: LanePass) -> Option<u32> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > tau as usize {
        return None;
    }
    if n == 0 {
        return Some(m as u32); // m ≤ τ from the length check
    }
    if m == 0 {
        return Some(n as u32);
    }
    let t = tau as i64;
    let width = (2 * t + 1) as usize;
    // Offset-by-one storage exactly as the reference: storage index
    // k + 1 holds band cell k (cell k of row i is column j = i + k − τ).
    let mut prev = vec![BIG; width + 2];
    let mut cur = vec![BIG; width + 2];
    let mut tmp = vec![0u32; width];
    for k in 0..width {
        let j = k as i64 - t;
        if (0..=m as i64).contains(&j) {
            prev[k + 1] = j as u32;
        }
    }
    for i in 1..=n {
        cur.fill(BIG);
        // Hoist the per-cell j-range branch: valid cells have
        // j = i + k − τ ∈ [0, m] ⇒ k ∈ [max(0, τ−i), min(width−1, m+τ−i)].
        let klo = (t - i as i64).max(0) as usize;
        // Non-empty: m + τ − i ≥ m + τ − n ≥ 0 by the length check.
        let khi = ((m as i64 + t - i as i64).min(width as i64 - 1)) as usize;
        let mut row_min = BIG;
        let mut kstart = klo;
        if t >= i as i64 {
            // The band still touches column j = 0: dp[i][0] = i.
            cur[klo + 1] = i as u32;
            row_min = i as u32;
            kstart = klo + 1;
        }
        if kstart <= khi {
            let lanes = khi - kstart + 1;
            // Column of the first lane: j0 = i + kstart − τ ≥ 1.
            let j0 = (i as i64 + kstart as i64 - t) as usize;
            lane_pass(
                &mut tmp[..lanes],
                &b[j0 - 1..j0 - 1 + lanes],
                &prev[kstart + 1..kstart + 1 + lanes],
                &prev[kstart + 2..kstart + 2 + lanes],
                a[i - 1],
            );
            // Sequential insert scan — the only loop-carried dependency.
            // `left` starts at cur[kstart]: BIG when cell kstart−1 is
            // outside the band, dp[i][0] = i when it was just written.
            let mut left = cur[kstart];
            for (c, &tm) in cur[kstart + 1..khi + 2].iter_mut().zip(&tmp[..lanes]) {
                let v = tm.min(left + 1);
                *c = v;
                row_min = row_min.min(v);
                left = v;
            }
        }
        if row_min > tau {
            return None; // every band cell exceeds τ: abandon
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    let k = m as i64 - n as i64 + t;
    debug_assert!((0..width as i64).contains(&k));
    let ed = prev[k as usize + 1];
    (ed <= tau).then_some(ed)
}

/// Explicit AVX2 lane pass (`vpminud` over 8 u32 lanes), compiled only
/// with `--features simd` on x86-64 and dispatched after a runtime
/// `is_x86_feature_detected!` check. The workspace denies `unsafe_code`;
/// this module is a scoped exception with every unsafe block documented,
/// and its results are gated bit-identical to the scalar lane pass by
/// `tests/kernel_differential.rs`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod lanes_avx2 {
    use std::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_cmpeq_epi32, _mm256_cvtepu8_epi32, _mm256_loadu_si256,
        _mm256_min_epu32, _mm256_set1_epi32, _mm256_storeu_si256, _mm_loadl_epi64,
    };

    /// Whether this CPU can run the AVX2 lane pass (cached by std).
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// AVX2 [`LanePass`](super::LanePass): full 8-lane chunks in vector
    /// registers, scalar remainder.
    pub fn lane_pass(tmp: &mut [u32], brow: &[u8], p1: &[u32], p2: &[u32], ca: u8) {
        debug_assert!(available(), "AVX2 lane pass on a non-AVX2 CPU");
        // SAFETY: `edit_distance_within` only routes here after
        // `available()` returned true, satisfying the `avx2` target
        // feature required by `lane_pass_impl`.
        unsafe { lane_pass_impl(tmp, brow, p1, p2, ca) }
    }

    // SAFETY: callers must have verified the `avx2` target feature at
    // runtime (`available()`); `#[target_feature]` makes calling this
    // on a CPU without it undefined behavior. Slices `brow`/`p1`/`p2`
    // must be at least `tmp.len()` long (debug-asserted below).
    #[target_feature(enable = "avx2")]
    unsafe fn lane_pass_impl(tmp: &mut [u32], brow: &[u8], p1: &[u32], p2: &[u32], ca: u8) {
        let lanes = tmp.len();
        debug_assert!(brow.len() >= lanes && p1.len() >= lanes && p2.len() >= lanes);
        let ca_splat = _mm256_set1_epi32(ca as i32);
        let ones = _mm256_set1_epi32(1);
        let mut x = 0usize;
        while x + 8 <= lanes {
            // SAFETY: x + 8 ≤ lanes ≤ len of every slice, so the 8-byte
            // load from `brow`, the two 32-byte loads from `p1`/`p2`,
            // and the 32-byte store to `tmp` are all in bounds
            // (unaligned forms tolerate any alignment).
            unsafe {
                let bw =
                    _mm256_cvtepu8_epi32(_mm_loadl_epi64(brow.as_ptr().add(x).cast::<__m128i>()));
                // eq lane = −1 where ca == b[x] ⇒ cost = 1 + eq ∈ {0, 1}.
                let cost = _mm256_add_epi32(ones, _mm256_cmpeq_epi32(bw, ca_splat));
                let sub = _mm256_add_epi32(_mm256_loadu_si256(p1.as_ptr().add(x).cast()), cost);
                let del = _mm256_add_epi32(_mm256_loadu_si256(p2.as_ptr().add(x).cast()), ones);
                _mm256_storeu_si256(tmp.as_mut_ptr().add(x).cast(), _mm256_min_epu32(sub, del));
            }
            x += 8;
        }
        super::lane_pass_scalar(&mut tmp[x..], &brow[x..], &p1[x..lanes], &p2[x..lanes], ca);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_pairs() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance(b"llabcdefkk", b"llabghijkk"), 4); // Example 11
    }

    #[test]
    fn banded_matches_full_dp_when_within() {
        let words: [&[u8]; 6] = [
            b"pigeon",
            b"pigeonring",
            b"ring",
            b"prince",
            b"principle",
            b"",
        ];
        for a in words {
            for b in words {
                let ed = edit_distance(a, b);
                for tau in 0..=12u32 {
                    let got = edit_distance_within(a, b, tau);
                    if ed <= tau {
                        assert_eq!(got, Some(ed), "{a:?} {b:?} tau={tau}");
                    } else {
                        assert_eq!(got, None, "{a:?} {b:?} tau={tau}");
                    }
                    // All three tiers agree bit-for-bit.
                    assert_eq!(got, edit_distance_within_reference(a, b, tau));
                    assert_eq!(got, edit_distance_within_banded(a, b, tau));
                }
            }
        }
    }

    #[test]
    fn banded_pseudo_random_cross_check() {
        // Deterministic pseudo-random strings; compare banded vs full.
        let mut s = 0x12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..300 {
            let la = (next() % 14) as usize;
            let lb = (next() % 14) as usize;
            let a: Vec<u8> = (0..la).map(|_| b'a' + (next() % 4) as u8).collect();
            let b: Vec<u8> = (0..lb).map(|_| b'a' + (next() % 4) as u8).collect();
            let ed = edit_distance(&a, &b);
            for tau in [0u32, 1, 2, 3, 5, 8] {
                let got = edit_distance_within(&a, &b, tau);
                assert_eq!(got.is_some(), ed <= tau, "{a:?} {b:?} tau={tau} ed={ed}");
                if let Some(g) = got {
                    assert_eq!(g, ed);
                }
                assert_eq!(got, edit_distance_within_reference(&a, &b, tau));
            }
        }
    }

    #[test]
    fn long_strings_exercise_full_lane_chunks() {
        // τ = 12 ⇒ band width 25: three full 8-lane AVX2 chunks plus a
        // remainder, on strings long enough for interior rows.
        let mut s = 0x77777u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let a: Vec<u8> = (0..120).map(|_| b'a' + (next() % 3) as u8).collect();
        let mut b = a.clone();
        for _ in 0..9 {
            let p = (next() % b.len() as u64) as usize;
            b[p] = b'a' + (next() % 3) as u8;
        }
        for tau in [6u32, 9, 12, 20] {
            assert_eq!(
                edit_distance_within(&a, &b, tau),
                edit_distance_within_reference(&a, &b, tau),
                "tau={tau}"
            );
            assert_eq!(
                edit_distance_within_banded(&a, &b, tau),
                edit_distance_within_reference(&a, &b, tau),
                "tau={tau}"
            );
        }
    }

    #[test]
    fn length_gap_shortcut() {
        assert_eq!(edit_distance_within(b"abc", b"abcdefgh", 3), None);
        assert_eq!(edit_distance_within(b"abc", b"abcdef", 3), Some(3));
    }
}
