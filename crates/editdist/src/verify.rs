//! Edit distance computation: full DP (reference) and banded
//! early-abandoning verification (Ukkonen's `O(τ·n)` algorithm).

/// Full dynamic-programming edit distance (Levenshtein). `O(|a|·|b|)`;
/// reference implementation for tests and tiny inputs.
pub fn edit_distance(a: &[u8], b: &[u8]) -> u32 {
    if a.is_empty() {
        return b.len() as u32;
    }
    let mut row: Vec<u32> = (0..=b.len() as u32).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i as u32 + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = diag + u32::from(ca != cb);
            diag = row[j + 1];
            row[j + 1] = sub.min(row[j] + 1).min(diag + 1);
        }
    }
    row[b.len()]
}

/// Banded verification: returns `Some(ed)` iff `ed(a, b) ≤ tau`, visiting
/// only the `2τ + 1` diagonal band and abandoning as soon as the entire
/// band row exceeds `tau`.
pub fn edit_distance_within(a: &[u8], b: &[u8], tau: u32) -> Option<u32> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > tau as usize {
        return None;
    }
    if n == 0 {
        return Some(m as u32); // m ≤ τ from the length check
    }
    if m == 0 {
        return Some(n as u32);
    }
    let t = tau as i64;
    const BIG: u32 = u32::MAX / 4;
    // dp[j] for j in the band [i − τ, i + τ], offset-indexed.
    let width = (2 * t + 1) as usize;
    let mut prev = vec![BIG; width + 2];
    let mut cur = vec![BIG; width + 2];
    // Row 0: dp[0][j] = j for j ≤ τ. Band cell k represents j = 0 − τ + k.
    for k in 0..width {
        let j = k as i64 - t;
        if (0..=m as i64).contains(&j) {
            prev[k + 1] = j as u32;
        }
    }
    for i in 1..=n {
        cur.fill(BIG);
        let mut row_min = BIG;
        for k in 0..width {
            let j = i as i64 + k as i64 - t;
            if j < 0 || j > m as i64 {
                continue;
            }
            let j = j as usize;
            let best = if j == 0 {
                i as u32
            } else {
                // prev row, same diagonal offset shifts by one because the
                // band is centered on i: prev cell for (i−1, j−1) is k,
                // for (i−1, j) is k+1; current (i, j−1) is k−1... using
                // the offset-by-one storage (index k+1 = offset k).
                let sub = prev[k + 1].saturating_add(u32::from(a[i - 1] != b[j - 1]));
                let del = prev[k + 2].saturating_add(1); // (i−1, j)
                let ins = if k > 0 { cur[k].saturating_add(1) } else { BIG }; // (i, j−1)
                sub.min(del).min(ins)
            };
            cur[k + 1] = best;
            row_min = row_min.min(best);
        }
        if row_min > tau {
            return None; // every band cell exceeds τ: abandon
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    let k = m as i64 - n as i64 + t;
    debug_assert!((0..width as i64).contains(&k));
    let ed = prev[k as usize + 1];
    (ed <= tau).then_some(ed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_pairs() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance(b"llabcdefkk", b"llabghijkk"), 4); // Example 11
    }

    #[test]
    fn banded_matches_full_dp_when_within() {
        let words: [&[u8]; 6] = [
            b"pigeon",
            b"pigeonring",
            b"ring",
            b"prince",
            b"principle",
            b"",
        ];
        for a in words {
            for b in words {
                let ed = edit_distance(a, b);
                for tau in 0..=12u32 {
                    let got = edit_distance_within(a, b, tau);
                    if ed <= tau {
                        assert_eq!(got, Some(ed), "{a:?} {b:?} tau={tau}");
                    } else {
                        assert_eq!(got, None, "{a:?} {b:?} tau={tau}");
                    }
                }
            }
        }
    }

    #[test]
    fn banded_pseudo_random_cross_check() {
        // Deterministic pseudo-random strings; compare banded vs full.
        let mut s = 0x12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..300 {
            let la = (next() % 14) as usize;
            let lb = (next() % 14) as usize;
            let a: Vec<u8> = (0..la).map(|_| b'a' + (next() % 4) as u8).collect();
            let b: Vec<u8> = (0..lb).map(|_| b'a' + (next() % 4) as u8).collect();
            let ed = edit_distance(&a, &b);
            for tau in [0u32, 1, 2, 3, 5, 8] {
                let got = edit_distance_within(&a, &b, tau);
                assert_eq!(got.is_some(), ed <= tau, "{a:?} {b:?} tau={tau} ed={ed}");
                if let Some(g) = got {
                    assert_eq!(g, ed);
                }
            }
        }
    }

    #[test]
    fn length_gap_shortcut() {
        assert_eq!(edit_distance_within(b"abc", b"abcdefgh", 3), None);
        assert_eq!(edit_distance_within(b"abc", b"abcdef", 3), Some(3));
    }
}
