//! The shared pivotal index and the Pivotal baseline \[28\].
//!
//! Index contents (data side):
//!
//! * `prefix_idx`: gram id → `(record, position)` over each record's
//!   (tie-extended) prefix grams;
//! * `pivotal_idx`: gram id → `(record, pivotal-slot, position)` over each
//!   record's `τ + 1` disjoint pivotal grams.
//!
//! Candidate generation (the *pivotal prefix filter*): for records whose
//! last prefix gram precedes the query's in the global order, one of the
//! record's pivotal grams must match (same gram, position within ±τ) a
//! gram in the query's prefix; otherwise one of the *query's* pivotal
//! grams must match in the record's prefix. Both probes emit
//! `(record, pivotal-slot)` pairs — the viable single boxes of §7's first
//! step, shared verbatim by [`crate::ring::RingEdit`].
//!
//! The baseline's second filter (the *alignment filter*) computes the
//! exact sum of per-pivotal-gram minimum edit distances against ±τ
//! substring windows and prunes when it exceeds τ — the paper observes
//! this is precisely the `l = m` basic form of the pigeonring principle,
//! at `O(κ² + κτ)` per box.

use crate::qgram::{prefix_grams, select_pivotal, PositionalGram, QGramCollection};
use crate::verify::edit_distance_within;
use pigeonring_core::fxhash::FxHashMap;

/// Per-query counters for the edit-distance engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EditStats {
    /// Records passing the pivotal prefix filter (Cand-1 in Figure 11).
    pub cand1: usize,
    /// Records also passing the alignment filter (Cand-2; baseline only).
    pub cand2: usize,
    /// Unique records passed to verification.
    pub candidates: usize,
    /// Records with `ed(x, q) ≤ τ`.
    pub results: usize,
    /// Posting entries scanned.
    pub postings_scanned: usize,
    /// Ring box evaluations (chain checks).
    pub boxes_checked: usize,
    /// Chain checks skipped via Corollary 2.
    pub skipped_by_corollary2: usize,
}

impl EditStats {
    /// Folds `other` into `self`, saturating on overflow (shard
    /// aggregation in the service layer).
    pub fn merge(&mut self, other: &Self) {
        self.cand1 = self.cand1.saturating_add(other.cand1);
        self.cand2 = self.cand2.saturating_add(other.cand2);
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.results = self.results.saturating_add(other.results);
        self.postings_scanned = self.postings_scanned.saturating_add(other.postings_scanned);
        self.boxes_checked = self.boxes_checked.saturating_add(other.boxes_checked);
        self.skipped_by_corollary2 = self
            .skipped_by_corollary2
            .saturating_add(other.skipped_by_corollary2);
    }
}

/// A viable single box from the first candidate-generation step.
#[derive(Clone, Copy, Debug)]
pub struct ViableBox {
    /// Record id.
    pub id: u32,
    /// Pivotal slot (box index in the ring, `0..=τ`).
    pub slot: u8,
    /// Whether the box ring is the record's pivotal grams (`true`,
    /// case A: record's last prefix gram precedes the query's) or the
    /// query's (`false`, case B).
    pub record_side: bool,
}

/// The pivotal prefix index over a string collection, built for a fixed
/// threshold `τ` and gram length `κ` (both shape the index).
pub struct PivotalIndex {
    collection: QGramCollection,
    tau: usize,
    prefix_idx: FxHashMap<u32, Vec<(u32, u32)>>,
    pivotal_idx: FxHashMap<u32, Vec<(u32, u8, u32)>>,
    /// Largest prefix gram id per record (`u32::MAX` for short records).
    last_rank: Vec<u32>,
    /// Pivotal grams per record, position-sorted (`None` for short
    /// records, which carry no pivotal guarantee).
    pivotal: Vec<Option<Vec<PositionalGram>>>,
    /// Records without a pivotal guarantee: always candidates under the
    /// length filter.
    short_ids: Vec<u32>,
}

impl PivotalIndex {
    /// Builds the index.
    pub fn build(collection: QGramCollection, tau: usize) -> Self {
        let kappa = collection.kappa();
        let n = collection.len();
        let mut prefix_idx: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
        let mut pivotal_idx: FxHashMap<u32, Vec<(u32, u8, u32)>> = FxHashMap::default();
        let mut last_rank = vec![u32::MAX; n];
        let mut pivotal: Vec<Option<Vec<PositionalGram>>> = vec![None; n];
        let mut short_ids = Vec::new();
        for id in 0..n {
            let grams = collection.grams(id);
            let prefix = prefix_grams(grams, kappa, tau);
            match select_pivotal(prefix, kappa, tau) {
                Some(piv) => {
                    last_rank[id] = prefix.last().expect("non-empty prefix").id;
                    for pg in prefix {
                        prefix_idx
                            .entry(pg.id)
                            .or_default()
                            .push((id as u32, pg.pos));
                    }
                    for (slot, pg) in piv.iter().enumerate() {
                        pivotal_idx
                            .entry(pg.id)
                            .or_default()
                            .push((id as u32, slot as u8, pg.pos));
                    }
                    pivotal[id] = Some(piv);
                }
                None => short_ids.push(id as u32),
            }
        }
        PivotalIndex {
            collection,
            tau,
            prefix_idx,
            pivotal_idx,
            last_rank,
            pivotal,
            short_ids,
        }
    }

    /// The underlying collection.
    pub fn collection(&self) -> &QGramCollection {
        &self.collection
    }

    /// The build threshold `τ`.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Record ids with no pivotal guarantee.
    pub fn short_ids(&self) -> &[u32] {
        &self.short_ids
    }

    /// Record `id`'s pivotal grams (position-sorted), if any.
    pub fn pivotal(&self, id: u32) -> Option<&[PositionalGram]> {
        self.pivotal[id as usize].as_deref()
    }

    /// Query-side structures: (tie-extended prefix, pivotal grams, last
    /// prefix rank). Pivotal is `None` for short queries.
    pub fn query_side(&self, q: &[u8]) -> (Vec<PositionalGram>, Option<Vec<PositionalGram>>, u32) {
        self.query_side_with(&mut Vec::new(), q)
    }

    /// [`PivotalIndex::query_side`] against a caller-owned gram buffer
    /// (the full extracted gram list, reused across queries by the
    /// planning path so only the prefix/pivotal vectors allocate).
    pub fn query_side_with(
        &self,
        gram_buf: &mut Vec<PositionalGram>,
        q: &[u8],
    ) -> (Vec<PositionalGram>, Option<Vec<PositionalGram>>, u32) {
        self.collection.dictionary().query_grams_into(q, gram_buf);
        let kappa = self.collection.kappa();
        let prefix = prefix_grams(gram_buf, kappa, self.tau).to_vec();
        let piv = select_pivotal(&prefix, kappa, self.tau);
        let last = prefix.last().map_or(u32::MAX, |pg| pg.id);
        (prefix, piv, last)
    }

    /// The first step of candidate generation (§7), shared by the
    /// baseline and Ring: emits every viable single box for query `q`,
    /// i.e. every position-compatible pivotal/prefix gram match in either
    /// direction. Returns the number of posting entries scanned.
    pub fn probe(
        &self,
        q_prefix: &[PositionalGram],
        q_pivotal: Option<&[PositionalGram]>,
        q_last: u32,
        q_len: usize,
        mut visit: impl FnMut(ViableBox),
    ) -> usize {
        let tau = self.tau as i64;
        let mut scanned = 0usize;
        // Case A: x's pivotal grams vs q's prefix; applies to records
        // whose last prefix gram does not come after q's.
        for pg in q_prefix {
            let Some(list) = self.pivotal_idx.get(&pg.id) else {
                continue;
            };
            for &(id, slot, pos) in list {
                scanned += 1;
                if self.last_rank[id as usize] <= q_last
                    && (pos as i64 - pg.pos as i64).abs() <= tau
                    && self.length_compatible(id, q_len)
                {
                    visit(ViableBox {
                        id,
                        slot,
                        record_side: true,
                    });
                }
            }
        }
        // Case B: q's pivotal grams vs x's prefixes; records whose last
        // prefix gram comes strictly after q's.
        if let Some(q_piv) = q_pivotal {
            for (slot, pg) in q_piv.iter().enumerate() {
                let Some(list) = self.prefix_idx.get(&pg.id) else {
                    continue;
                };
                for &(id, pos) in list {
                    scanned += 1;
                    if self.last_rank[id as usize] > q_last
                        && (pos as i64 - pg.pos as i64).abs() <= tau
                        && self.length_compatible(id, q_len)
                    {
                        visit(ViableBox {
                            id,
                            slot: slot as u8,
                            record_side: false,
                        });
                    }
                }
            }
        }
        scanned
    }

    /// Length filter: `||x| − |q|| ≤ τ`.
    #[inline]
    pub fn length_compatible(&self, id: u32, q_len: usize) -> bool {
        self.collection.string(id as usize).len().abs_diff(q_len) <= self.tau
    }
}

/// Exact minimum edit distance from `gram` to any substring of
/// `text[lo..hi]` (the alignment-filter box value): approximate string
/// matching DP with free start and end in the window. `O(κ·|window|)`.
pub fn min_substring_ed(gram: &[u8], text: &[u8], lo: i64, hi: i64) -> u32 {
    let lo = lo.max(0) as usize;
    let hi = (hi.max(0) as usize).min(text.len());
    if lo >= hi {
        return gram.len() as u32;
    }
    let w = &text[lo..hi];
    // dp[j] = min ed of gram[0..i] vs any suffix of w[0..j].
    let mut dp: Vec<u32> = vec![0; w.len() + 1];
    for (i, &g) in gram.iter().enumerate() {
        let mut diag = dp[0];
        dp[0] = i as u32 + 1;
        for (j, &c) in w.iter().enumerate() {
            let sub = diag + u32::from(g != c);
            diag = dp[j + 1];
            dp[j + 1] = sub.min(dp[j] + 1).min(diag + 1);
        }
    }
    dp.into_iter().min().expect("non-empty dp row")
}

/// The Pivotal baseline \[28\]: pivotal prefix filter + alignment filter
/// + banded verification.
pub struct Pivotal {
    index: PivotalIndex,
    epoch: u32,
    seen: Vec<u32>,
}

impl Pivotal {
    /// Builds the baseline over a gram collection at threshold `τ`.
    pub fn build(collection: QGramCollection, tau: usize) -> Self {
        let n = collection.len();
        Pivotal {
            index: PivotalIndex::build(collection, tau),
            epoch: 0,
            seen: vec![0; n],
        }
    }

    /// The shared index.
    pub fn index(&self) -> &PivotalIndex {
        &self.index
    }

    /// Searches for all strings with `ed(x, q) ≤ τ`. Returns ascending
    /// ids and statistics.
    pub fn search(&mut self, q: &[u8]) -> (Vec<u32>, EditStats) {
        let mut stats = EditStats::default();
        if self.epoch == u32::MAX {
            self.seen.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let tau = self.index.tau;
        let kappa = self.index.collection.kappa();

        let (q_prefix, q_pivotal, q_last) = self.index.query_side(q);
        let mut cand1: Vec<ViableBox> = Vec::new();
        let seen = &mut self.seen;
        if q_pivotal.is_none() {
            // No pivotal guarantee (query shorter than κ yields no grams
            // at all; a longer one may still lack a usable pivotal set):
            // every length-compatible record is a candidate.
            for id in 0..self.index.collection.len() as u32 {
                if self.index.length_compatible(id, q.len()) {
                    cand1.push(ViableBox {
                        id,
                        slot: 0,
                        record_side: true,
                    });
                }
            }
        } else {
            stats.postings_scanned =
                self.index
                    .probe(&q_prefix, q_pivotal.as_deref(), q_last, q.len(), |vb| {
                        if seen[vb.id as usize] != epoch {
                            seen[vb.id as usize] = epoch;
                            cand1.push(vb);
                        }
                    });
            // Short records are always candidates.
            for &id in self.index.short_ids() {
                if seen[id as usize] != epoch && self.index.length_compatible(id, q.len()) {
                    seen[id as usize] = epoch;
                    cand1.push(ViableBox {
                        id,
                        slot: 0,
                        record_side: true,
                    });
                }
            }
        }
        stats.cand1 = cand1.len();

        // Alignment filter: Σ_i min-ed(pivotal gram i, ±τ window) ≤ τ.
        let mut cand2: Vec<u32> = Vec::new();
        for vb in cand1 {
            let id = vb.id;
            let x = self.index.collection.string(id as usize);
            let (grams_src, text): (Option<&[PositionalGram]>, &[u8]) = if vb.record_side {
                (self.index.pivotal(id), q)
            } else {
                (q_pivotal.as_deref(), x)
            };
            let pass = match grams_src {
                None => true, // short side: no filter available
                Some(piv) => {
                    let src = if vb.record_side { x } else { q };
                    let mut sum = 0u32;
                    let mut ok = true;
                    for pg in piv {
                        let g = &src[pg.pos as usize..pg.pos as usize + kappa];
                        let lo = pg.pos as i64 - tau as i64;
                        let hi = pg.pos as i64 + kappa as i64 + tau as i64;
                        sum += min_substring_ed(g, text, lo, hi);
                        if sum > tau as u32 {
                            ok = false;
                            break;
                        }
                    }
                    ok
                }
            };
            if pass {
                cand2.push(id);
            }
        }
        stats.cand2 = cand2.len();
        stats.candidates = cand2.len();

        let mut results: Vec<u32> = cand2
            .into_iter()
            .filter(|&id| {
                edit_distance_within(self.index.collection.string(id as usize), q, tau as u32)
                    .is_some()
            })
            .collect();
        results.sort_unstable();
        stats.results = results.len();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qgram::GramOrder;
    use crate::verify::edit_distance;

    fn strs(v: &[&str]) -> Vec<Vec<u8>> {
        v.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn linear_scan(strings: &[Vec<u8>], q: &[u8], tau: u32) -> Vec<u32> {
        strings
            .iter()
            .enumerate()
            .filter(|(_, x)| edit_distance(x, q) <= tau)
            .map(|(id, _)| id as u32)
            .collect()
    }

    #[test]
    fn min_substring_ed_basics() {
        // "cd" appears exactly in "abcdef".
        assert_eq!(min_substring_ed(b"cd", b"abcdef", 0, 6), 0);
        // One substitution away.
        assert_eq!(min_substring_ed(b"cx", b"abcdef", 0, 6), 1);
        // Empty window: full gram length.
        assert_eq!(min_substring_ed(b"cd", b"abcdef", 4, 4), 2);
    }

    #[test]
    fn pivotal_matches_linear_scan() {
        let strings = strs(&[
            "pigeonring",
            "pigeonhole",
            "pigeon",
            "principle",
            "princess",
            "ringing",
            "pigeonrings",
            "wigeonring",
            "threshold",
            "similarity",
        ]);
        for tau in 1..=3usize {
            let c = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
            let mut eng = Pivotal::build(c, tau);
            for (qid, q) in strings.iter().enumerate() {
                let expect = linear_scan(&strings, q, tau as u32);
                let (got, _) = eng.search(q);
                assert_eq!(got, expect, "tau={tau} qid={qid}");
            }
        }
    }

    #[test]
    fn alignment_filter_only_tightens() {
        let strings = strs(&[
            "abcdefghij",
            "abcdefghiz",
            "zzcdefghij",
            "mnopqrstuv",
            "abzzefghij",
        ]);
        let c = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let mut eng = Pivotal::build(c, 2);
        let (_, stats) = eng.search(b"abcdefghij");
        assert!(stats.cand2 <= stats.cand1);
        assert!(stats.results <= stats.cand2);
    }

    #[test]
    fn short_strings_never_lost() {
        let strings = strs(&["ab", "ba", "abc", "xyz", "a"]);
        let c = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let mut eng = Pivotal::build(c, 2);
        for (qid, q) in strings.iter().enumerate() {
            let expect = linear_scan(&strings, q, 2);
            assert_eq!(eng.search(q).0, expect, "qid={qid}");
        }
    }
}
