//! # pigeonring-editdist
//!
//! String edit distance search (Problem 4 of the paper): given a
//! collection of strings and a query `q`, find all `x` with
//! `ed(x, q) ≤ τ`.
//!
//! Engines:
//!
//! * [`Pivotal`] — the Pivotal baseline \[28\]: each string's q-grams are
//!   sorted by a global order; the first `κτ + 1` form its *prefix* and a
//!   greedy positional selection yields `τ + 1` disjoint *pivotal*
//!   q-grams. A result must have an exact (position-compatible) match
//!   between one side's pivotal grams and the other side's prefix; the
//!   *alignment filter* then bounds the sum of per-gram minimum edit
//!   distances by `τ`.
//! * [`RingEdit`] — the §6.3 pigeonring engine: the alignment filter is
//!   recognized as the `l = m` basic form, and replaced by the strong
//!   form with per-box *content-filter lower bounds* \[114\]
//!   (`ed ≥ ⌈H(bitmask)/2⌉`, a few popcounts instead of an
//!   `O(κ² + κτ)` DP), with early exit at the first non-viable prefix.
//!
//! The filtering instance `⟨pivotal grams, min-edit boxes, D(τ) = τ⟩` is
//! complete (`‖B‖₁ ≤ ed(x, q)` because the grams are disjoint) but not
//! tight (Lemma 7 condition 2 fails) — candidates must still be verified,
//! which [`verify::edit_distance_within`] does with a banded
//! early-abandoning DP.

pub mod content;
pub mod pivotal;
pub mod qgram;
pub mod ring;
pub mod service;
pub mod verify;

pub use pivotal::{EditStats, Pivotal, PivotalIndex};
pub use qgram::{GramDictionary, GramOrder, QGramCollection};
pub use ring::{EditPlan, EditScratch, RingEdit};
pub use service::EditParams;

#[cfg(test)]
mod paper_examples;
