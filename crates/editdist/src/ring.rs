//! The pigeonring edit-distance engine (§6.3).
//!
//! Same first step as [`crate::pivotal::Pivotal`] (a viable single box is
//! a position-compatible exact pivotal-gram match, so its box value is 0).
//! The second step replaces the alignment filter with the strong form of
//! the pigeonring principle at chain length `l` over `m = τ + 1` boxes and
//! the uniform quota `‖c^{l'}‖₁ ≤ l'·τ/m` (Theorem 3): subsequent boxes
//! are *content-filter lower bounds* (`⌈H(mask)/2⌉` over the ±τ window,
//! `O(κ + τ)` popcounts each), and the check aborts at the first
//! non-viable prefix. Lower-bounding box values only shrinks chain sums,
//! so every true result keeps its prefix-viable chain — completeness is
//! preserved (and asserted against linear scan in the tests).
//!
//! Query execution is split into *plan once, execute per index*: an
//! [`EditPlan`] carries every query-side structure (interned prefix,
//! pivotal grams, character masks), computed by [`RingEdit::plan_query`]
//! and consumed read-only by [`RingEdit::search_with_plan`]. When shards
//! share one [`GramDictionary`](crate::qgram::GramDictionary), one plan
//! is valid for every shard — the `pigeonring-service` plan-once path.

use crate::content::{char_mask, min_window_bound, window_masks};
use crate::pivotal::{EditStats, PivotalIndex, ViableBox};
use crate::qgram::{PositionalGram, QGramCollection};
use crate::verify::edit_distance_within;
use pigeonring_core::viability::{check_prefix_viable_lazy, Direction, ThresholdScheme};

/// Per-thread mutable query state for [`RingEdit`]: the shared
/// epoch-stamped candidate dedup array and Corollary-2 ruled-start
/// bitmasks ([`pigeonring_core::scratch::EpochScratch`]), plus the
/// gram-extraction buffer the planning path reuses across queries.
/// `Default` yields an empty scratch that lazily sizes itself to the
/// engine's record count on first use.
#[derive(Clone, Debug, Default)]
pub struct EditScratch {
    /// Epoch-stamped dedup + Corollary-2 ruled-start core.
    pub(crate) epochs: pigeonring_core::scratch::EpochScratch,
    /// Reused buffer for the query's full extracted gram list (only the
    /// prefix/pivotal selections escape into the [`EditPlan`]).
    pub(crate) gram_buf: Vec<PositionalGram>,
}

/// The query-side plan for one edit-distance query: everything that
/// depends on the query (and the shared gram dictionary) but not on any
/// particular shard's postings. Computed once by
/// [`RingEdit::plan_query`]; reusable across shards sharing the query's
/// dictionary and across chain lengths `l` (nothing here depends on `l`).
#[derive(Clone, Debug)]
pub struct EditPlan {
    /// The query's tie-extended prefix grams in global order.
    prefix: Vec<PositionalGram>,
    /// The query's `τ + 1` disjoint pivotal grams (`None`: the query
    /// carries no pivotal guarantee and all length-compatible records
    /// are candidates).
    pivotal: Option<Vec<PositionalGram>>,
    /// Largest prefix gram id (`u32::MAX` when the prefix is empty).
    last: u32,
    /// Character masks of every query window (case A box values).
    q_masks: Vec<u64>,
    /// Character mask of each query pivotal gram (case B box values).
    q_piv_masks: Vec<u64>,
}

/// The pigeonring edit-distance search engine. `l = 1` keeps only the
/// pivotal prefix filter (Cand-1); the paper's best setting is
/// `l = min(3, τ + 1)`.
///
/// The index is immutable at query time: [`RingEdit::search_with`] takes
/// `&self` plus an external [`EditScratch`], so shards can serve
/// concurrent worker threads. The `&mut self` methods wrap an
/// engine-owned scratch.
pub struct RingEdit {
    index: PivotalIndex,
    scratch: EditScratch,
}

impl RingEdit {
    /// Builds the engine over a gram collection at threshold `τ`.
    ///
    /// # Panics
    /// Panics if `τ > 63` (the Corollary-2 bitmask holds `τ + 1` starts).
    pub fn build(collection: QGramCollection, tau: usize) -> Self {
        assert!(tau <= 63, "ruled-start bitmask supports τ ≤ 63");
        RingEdit {
            index: PivotalIndex::build(collection, tau),
            scratch: EditScratch::default(),
        }
    }

    /// The shared index.
    pub fn index(&self) -> &PivotalIndex {
        &self.index
    }

    /// Computes the query-side plan: gram extraction, interning, prefix
    /// and pivotal selection, and character masks — the work that is
    /// identical for every shard sharing this engine's gram dictionary.
    /// `scratch` only lends its gram buffer; no per-record state is
    /// touched.
    pub fn plan_query(&self, scratch: &mut EditScratch, q: &[u8]) -> EditPlan {
        let (prefix, pivotal, last) = self.index.query_side_with(&mut scratch.gram_buf, q);
        let kappa = self.index.collection().kappa();
        let (q_masks, q_piv_masks) = match &pivotal {
            Some(piv) => (
                window_masks(q, kappa),
                piv.iter()
                    .map(|pg| char_mask(&q[pg.pos as usize..pg.pos as usize + kappa]))
                    .collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        EditPlan {
            prefix,
            pivotal,
            last,
            q_masks,
            q_piv_masks,
        }
    }

    /// Searches for all strings with `ed(x, q) ≤ τ` using chain length
    /// `l` (clamped to `[1..τ+1]`). Returns ascending ids and statistics.
    pub fn search(&mut self, q: &[u8], l: usize) -> (Vec<u32>, EditStats) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.search_with(&mut scratch, q, l);
        self.scratch = scratch;
        out
    }

    /// [`RingEdit::search`] against a caller-owned scratch; takes
    /// `&self`, so any number of threads can search one engine
    /// concurrently, each with its own [`EditScratch`].
    pub fn search_with(
        &self,
        scratch: &mut EditScratch,
        q: &[u8],
        l: usize,
    ) -> (Vec<u32>, EditStats) {
        let plan = self.plan_query(scratch, q);
        self.search_with_plan(scratch, &plan, q, l)
    }

    /// [`RingEdit::search_with`] against a precomputed [`EditPlan`] (the
    /// plan-once path: one plan serves every shard and every `l`).
    pub fn search_with_plan(
        &self,
        scratch: &mut EditScratch,
        plan: &EditPlan,
        q: &[u8],
        l: usize,
    ) -> (Vec<u32>, EditStats) {
        let (cands, mut stats) = self.candidates_with_plan(scratch, plan, q, l);
        let tau = self.index.tau();
        let mut results: Vec<u32> = cands
            .into_iter()
            .filter(|&id| {
                edit_distance_within(self.index.collection().string(id as usize), q, tau as u32)
                    .is_some()
            })
            .collect();
        results.sort_unstable();
        stats.results = results.len();
        (results, stats)
    }

    /// Candidate generation only (no verification), for timing the
    /// filter separately (Figure 7's "Cand." series).
    pub fn candidates(&mut self, q: &[u8], l: usize) -> (Vec<u32>, EditStats) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.candidates_with(&mut scratch, q, l);
        self.scratch = scratch;
        out
    }

    /// [`RingEdit::candidates`] against a caller-owned scratch (`&self`;
    /// see [`RingEdit::search_with`]).
    pub fn candidates_with(
        &self,
        scratch: &mut EditScratch,
        q: &[u8],
        l: usize,
    ) -> (Vec<u32>, EditStats) {
        let plan = self.plan_query(scratch, q);
        self.candidates_with_plan(scratch, &plan, q, l)
    }

    /// [`RingEdit::candidates_with`] against a precomputed [`EditPlan`]:
    /// the execute-per-shard half of the split. Reads the plan's
    /// query-side structures and this engine's postings; never touches
    /// the dictionary.
    pub fn candidates_with_plan(
        &self,
        scratch: &mut EditScratch,
        plan: &EditPlan,
        q: &[u8],
        l: usize,
    ) -> (Vec<u32>, EditStats) {
        let tau = self.index.tau();
        let m = tau + 1;
        let l = l.clamp(1, m);
        let kappa = self.index.collection().kappa();
        let mut stats = EditStats::default();
        let epoch = scratch.epochs.next_epoch(self.index.collection().len());

        let mut cands: Vec<u32> = Vec::new();

        if plan.pivotal.is_none() {
            // No pivotal guarantee on the query side (short query or no
            // disjoint pivotal set): all length-compatible records are
            // candidates.
            for id in 0..self.index.collection().len() as u32 {
                if self.index.length_compatible(id, q.len()) {
                    cands.push(id);
                }
            }
        } else {
            let scheme = ThresholdScheme::uniform(tau as i64, m);
            let q_piv = plan.pivotal.as_deref().expect("checked above");
            let q_masks = &plan.q_masks;
            let q_piv_masks = &plan.q_piv_masks;

            let index = &self.index;
            let pigeonring_core::scratch::EpochScratch {
                ref mut accepted,
                ref mut ruled_epoch,
                ref mut ruled_mask,
                ..
            } = scratch.epochs;
            let collection: &QGramCollection = index.collection();

            stats.postings_scanned =
                index.probe(&plan.prefix, Some(q_piv), plan.last, q.len(), |vb| {
                    stats.cand1 += 1;
                    let ViableBox {
                        id,
                        slot,
                        record_side,
                    } = vb;
                    let idu = id as usize;
                    if accepted[idu] == epoch {
                        return;
                    }
                    let start = slot as usize;
                    if ruled_epoch[idu] == epoch && (ruled_mask[idu] >> start) & 1 == 1 {
                        stats.skipped_by_corollary2 += 1;
                        return;
                    }
                    if l == 1 {
                        accepted[idu] = epoch;
                        cands.push(id);
                        return;
                    }
                    let x = collection.string(idu);
                    let check = if record_side {
                        // Case A: boxes are x's pivotal grams, windows in q.
                        let piv = index.pivotal(id).expect("probed record has pivotal");
                        check_prefix_viable_lazy(&scheme, Direction::Le, start, l, |j| {
                            stats.boxes_checked += 1;
                            let jm = j % m;
                            if jm == start {
                                return 0; // exact match
                            }
                            let pg = piv[jm];
                            let g = &x[pg.pos as usize..pg.pos as usize + kappa];
                            min_window_bound(
                                char_mask(g),
                                q_masks,
                                pg.pos as i64 - tau as i64,
                                pg.pos as i64 + tau as i64,
                            ) as i64
                        })
                    } else {
                        // Case B: boxes are q's pivotal grams, windows in x.
                        check_prefix_viable_lazy(&scheme, Direction::Le, start, l, |j| {
                            stats.boxes_checked += 1;
                            let jm = j % m;
                            if jm == start {
                                return 0;
                            }
                            let pg = q_piv[jm];
                            lazy_window_bound(q_piv_masks[jm], x, kappa, pg.pos, tau) as i64
                        })
                    };
                    match check {
                        Ok(()) => {
                            accepted[idu] = epoch;
                            cands.push(id);
                        }
                        Err(l_fail) => {
                            if ruled_epoch[idu] != epoch {
                                ruled_epoch[idu] = epoch;
                                ruled_mask[idu] = 0;
                            }
                            for off in 0..l_fail {
                                ruled_mask[idu] |= 1u64 << ((start + off) % m);
                            }
                        }
                    }
                });
            // Short records carry no guarantee: always candidates.
            for &id in index.short_ids() {
                let idu = id as usize;
                if accepted[idu] != epoch && index.length_compatible(id, q.len()) {
                    accepted[idu] = epoch;
                    cands.push(id);
                }
            }
        }

        stats.candidates = cands.len();
        (cands, stats)
    }
}

/// Content lower bound of a gram mask against the ±τ window of `text`,
/// computing window masks on the fly (case B touches few windows per
/// candidate, so a full [`window_masks`] precomputation would be wasted).
fn lazy_window_bound(gram_mask: u64, text: &[u8], kappa: usize, pos: u32, tau: usize) -> u32 {
    if text.len() < kappa {
        return u32::MAX / 4;
    }
    let lo = (pos as i64 - tau as i64).max(0) as usize;
    let hi = ((pos as usize + tau).min(text.len() - kappa)) as i64;
    if hi < lo as i64 {
        return u32::MAX / 4;
    }
    let mut best = u32::MAX / 4;
    for u in lo..=hi as usize {
        let m = char_mask(&text[u..u + kappa]);
        best = best.min((gram_mask ^ m).count_ones().div_ceil(2));
        if best == 0 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qgram::GramOrder;
    use crate::verify::edit_distance;

    fn strs(v: &[&str]) -> Vec<Vec<u8>> {
        v.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn linear_scan(strings: &[Vec<u8>], q: &[u8], tau: u32) -> Vec<u32> {
        strings
            .iter()
            .enumerate()
            .filter(|(_, x)| edit_distance(x, q) <= tau)
            .map(|(id, _)| id as u32)
            .collect()
    }

    fn pseudo_random_strings(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(n);
        for i in 0..n {
            if i % 3 == 0 && i > 0 {
                // Plant an edited variant of an earlier string.
                let mut v = out[i - 1].clone();
                let edits = (next() % 3) as usize;
                for _ in 0..edits {
                    if v.is_empty() {
                        break;
                    }
                    let p = (next() as usize) % v.len();
                    match next() % 3 {
                        0 => v[p] = b'a' + (next() % 6) as u8,
                        1 => v.insert(p, b'a' + (next() % 6) as u8),
                        _ => {
                            v.remove(p);
                        }
                    }
                }
                out.push(v);
            } else {
                let l = len / 2 + (next() as usize % len.max(1));
                out.push((0..l).map(|_| b'a' + (next() % 6) as u8).collect());
            }
        }
        out
    }

    #[test]
    fn ring_matches_linear_scan_all_l() {
        let strings = pseudo_random_strings(80, 12, 42);
        for tau in 1..=3usize {
            let c = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
            let mut eng = RingEdit::build(c, tau);
            for (qid, q) in strings.iter().enumerate().step_by(5) {
                let expect = linear_scan(&strings, q, tau as u32);
                for l in 1..=(tau + 1) {
                    let (got, _) = eng.search(q, l);
                    assert_eq!(got, expect, "tau={tau} qid={qid} l={l}");
                }
            }
        }
    }

    #[test]
    fn one_plan_serves_every_l() {
        // The plan is l-independent: computing it once and reusing it
        // across chain lengths must match the fresh-plan path exactly.
        let strings = pseudo_random_strings(100, 14, 11);
        let c = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let eng = RingEdit::build(c, 3);
        let mut scratch = EditScratch::default();
        for q in strings.iter().step_by(9) {
            let plan = eng.plan_query(&mut scratch, q);
            for l in 1..=4usize {
                let (fresh, fresh_stats) = eng.search_with(&mut EditScratch::default(), q, l);
                let (planned, planned_stats) = eng.search_with_plan(&mut scratch, &plan, q, l);
                assert_eq!(planned, fresh, "l={l}");
                assert_eq!(planned_stats, fresh_stats, "l={l}");
            }
        }
    }

    #[test]
    fn candidates_shrink_with_l() {
        let strings = pseudo_random_strings(150, 16, 7);
        let c = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let mut eng = RingEdit::build(c, 3);
        for (qid, q) in strings.iter().enumerate().step_by(17) {
            let mut prev = usize::MAX;
            for l in 1..=4usize {
                let (_, stats) = eng.search(q, l);
                assert!(stats.candidates <= prev, "qid={qid} l={l}");
                prev = stats.candidates;
            }
        }
    }

    #[test]
    fn ring_candidates_subset_of_pivotal_cand1() {
        use crate::pivotal::Pivotal;
        let strings = pseudo_random_strings(100, 14, 13);
        let c1 = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let c2 = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let mut ring = RingEdit::build(c1, 2);
        let mut piv = Pivotal::build(c2, 2);
        for q in strings.iter().step_by(9) {
            let (_, rs) = ring.search(q, 3);
            let (_, ps) = piv.search(q);
            assert!(rs.candidates <= ps.cand1, "ring must not exceed Cand-1");
        }
    }

    #[test]
    fn longer_kappa_matches_too() {
        let strings = pseudo_random_strings(60, 30, 77);
        let c = QGramCollection::build(strings.clone(), 4, GramOrder::Frequency);
        let mut eng = RingEdit::build(c, 4);
        for (qid, q) in strings.iter().enumerate().step_by(7) {
            let expect = linear_scan(&strings, q, 4);
            let (got, _) = eng.search(q, 3);
            assert_eq!(got, expect, "qid={qid}");
        }
    }

    #[test]
    fn identical_strings_found_at_tau_zero_equivalent() {
        let strings = strs(&["hello world", "hello worlds", "help world"]);
        let c = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let mut eng = RingEdit::build(c, 1);
        let (res, _) = eng.search(b"hello world", 2);
        assert_eq!(res, vec![0, 1]);
    }
}
