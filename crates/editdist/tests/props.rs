//! Property tests for the edit-distance substrate and engines: banded
//! verification against the full DP, content-filter admissibility, and
//! engine exactness against linear scan on arbitrary strings.

use pigeonring_editdist::content::{char_mask, mask_lower_bound, window_masks};
use pigeonring_editdist::verify::{edit_distance, edit_distance_within};
use pigeonring_editdist::{GramOrder, Pivotal, QGramCollection, RingEdit};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"abcdef".to_vec()), 0..18)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn banded_equals_full_dp(a in word(), b in word(), tau in 0u32..10) {
        let ed = edit_distance(&a, &b);
        let got = edit_distance_within(&a, &b, tau);
        if ed <= tau {
            prop_assert_eq!(got, Some(ed));
        } else {
            prop_assert_eq!(got, None);
        }
    }

    #[test]
    fn edit_distance_is_a_metric(a in word(), b in word(), c in word()) {
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert!(
            edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c)
        );
    }

    #[test]
    fn content_bound_is_admissible(a in word(), b in word()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let bound = mask_lower_bound(char_mask(&a), char_mask(&b));
        prop_assert!(bound <= edit_distance(&a, &b));
    }

    #[test]
    fn window_masks_agree_with_direct(s in word(), kappa in 1usize..5) {
        let got = window_masks(&s, kappa);
        if s.len() < kappa {
            prop_assert!(got.is_empty());
        } else {
            let expect: Vec<u64> = s.windows(kappa).map(char_mask).collect();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn engines_match_linear_scan(
        strings in prop::collection::vec(word(), 3..24),
        tau in 1usize..=3,
        qsel in 0usize..24,
    ) {
        let q = strings[qsel % strings.len()].clone();
        let expect: Vec<u32> = strings
            .iter()
            .enumerate()
            .filter(|(_, x)| edit_distance(x, &q) <= tau as u32)
            .map(|(id, _)| id as u32)
            .collect();
        let coll = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let mut ring = RingEdit::build(coll, tau);
        for l in 1..=(tau + 1) {
            prop_assert_eq!(ring.search(&q, l).0, expect.clone(), "l={}", l);
        }
        let coll = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let mut piv = Pivotal::build(coll, tau);
        prop_assert_eq!(piv.search(&q).0, expect);
    }
}
