//! Differential gate for the vectorized banded edit-distance kernel
//! (the CI `kernel-differential` job): the original cell-at-a-time
//! reference, the always-scalar lane-pass kernel, and the production
//! dispatch entry point (AVX2 lane pass with `--features simd` on an
//! AVX2 host) must return bit-identical `Option<u32>` values. τ is
//! driven to the exact early-exit boundary (`ed − 1`, `ed`, `ed + 1`)
//! and the full DP provides ground truth.

use pigeonring_editdist::verify::{
    edit_distance, edit_distance_within, edit_distance_within_banded,
    edit_distance_within_reference,
};
use proptest::prelude::*;

fn word(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"abcd".to_vec()), 0..max_len)
}

/// Asserts every compiled tier agrees with the reference (and, when
/// `Some`, with the full DP) for one `(a, b, tau)`.
fn assert_tiers_agree(a: &[u8], b: &[u8], tau: u32) -> Result<(), TestCaseError> {
    let reference = edit_distance_within_reference(a, b, tau);
    let banded = edit_distance_within_banded(a, b, tau);
    let dispatch = edit_distance_within(a, b, tau);
    prop_assert_eq!(
        banded,
        reference,
        "banded diverged: {:?} {:?} tau={}",
        a,
        b,
        tau
    );
    prop_assert_eq!(
        dispatch,
        reference,
        "dispatch diverged: {:?} {:?} tau={}",
        a,
        b,
        tau
    );
    let ed = edit_distance(a, b);
    prop_assert_eq!(reference.is_some(), ed <= tau);
    if let Some(got) = reference {
        prop_assert_eq!(got, ed);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tiers_agree_at_the_early_exit_boundary(a in word(24), b in word(24)) {
        let ed = edit_distance(&a, &b);
        // τ straddling the exact accept/reject boundary, plus the
        // degenerate τ = 0 and a slack value.
        for tau in [ed.saturating_sub(1), ed, ed + 1, 0, ed + 7] {
            assert_tiers_agree(&a, &b, tau)?;
        }
    }

    #[test]
    fn tiers_agree_on_random_tau(a in word(40), b in word(40), tau in 0u32..14) {
        assert_tiers_agree(&a, &b, tau)?;
    }

    #[test]
    fn tiers_agree_on_near_duplicates(
        base in word(64),
        edits in prop::collection::vec((0usize..64, prop::sample::select(b"abcd".to_vec())), 0..6),
        tau in 0u32..14,
    ) {
        // Near-duplicates keep the band full of live values — the case
        // where every lane of the vectorized pass carries real data.
        let mut b = base.clone();
        for (pos, c) in edits {
            if !b.is_empty() {
                let p = pos % b.len();
                b[p] = c;
            }
        }
        assert_tiers_agree(&base, &b, tau)?;
    }
}

#[test]
fn tiers_agree_on_wide_bands_with_full_lane_chunks() {
    // τ = 12 (band width 25: three full 8-lane chunks plus remainder)
    // on 150-char near-duplicates, at the boundary and both sides.
    let mut s = 0xACEDu64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let a: Vec<u8> = (0..150).map(|_| b'a' + (next() % 3) as u8).collect();
    let mut b = a.clone();
    for _ in 0..11 {
        let p = (next() % b.len() as u64) as usize;
        b[p] = b'a' + (next() % 3) as u8;
    }
    let ed = edit_distance(&a, &b);
    for tau in [ed.saturating_sub(1), ed, ed + 1, 12, 20] {
        let reference = edit_distance_within_reference(&a, &b, tau);
        assert_eq!(
            edit_distance_within_banded(&a, &b, tau),
            reference,
            "tau={tau}"
        );
        assert_eq!(edit_distance_within(&a, &b, tau), reference, "tau={tau}");
    }
}
