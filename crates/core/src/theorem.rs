//! The pigeonhole and pigeonring principles as executable statements.
//!
//! Each function takes a box layout and the bound `n` and returns the
//! *witness* whose existence the corresponding theorem guarantees whenever
//! the hypothesis `‖B‖₁ ≤ n` holds. The test suite (including property
//! tests in `tests/`) checks that a witness is always found under the
//! hypothesis — i.e. it machine-checks the theorems on sampled inputs —
//! and the per-problem engines rely on the same predicates through
//! [`crate::viability`].
//!
//! These functions are deliberately written as transparent brute-force
//! searches; the optimized incremental forms live in [`crate::viability`].

use crate::viability::{BoxValue, Direction, ThresholdScheme};

/// Theorem 1 (pigeonhole principle): if `‖B‖₁ ≤ n` there exists `i` with
/// `b_i ≤ n/m`. Returns such an `i` if one exists.
pub fn pigeonhole<T: BoxValue>(boxes: &[T], n: T) -> Option<usize> {
    let m = boxes.len();
    (0..m).find(|&i| T::cmp_uniform(boxes[i], 1, n, m) != core::cmp::Ordering::Greater)
}

/// Theorem 2 (pigeonring principle, basic form): if `‖B‖₁ ≤ n` then for
/// every `l ∈ [1..m]` there is a chain `c^l_i` with `‖c^l_i‖₁ ≤ l·n/m`.
/// Returns such an `i` for the given `l` if one exists.
pub fn pigeonring_basic<T: BoxValue>(boxes: &[T], n: T, l: usize) -> Option<usize> {
    let scheme = ThresholdScheme::uniform(n, boxes.len());
    crate::viability::find_viable_window(boxes, &scheme, Direction::Le, l)
}

/// Theorem 3 (pigeonring principle, strong form): if `‖B‖₁ ≤ n` then for
/// every `l ∈ [1..m]` there is a **prefix-viable** chain of length `l`.
/// Returns the start of such a chain if one exists.
pub fn pigeonring_strong<T: BoxValue>(boxes: &[T], n: T, l: usize) -> Option<usize> {
    let scheme = ThresholdScheme::uniform(n, boxes.len());
    crate::viability::find_prefix_viable(boxes, &scheme, Direction::Le, l)
}

/// The suffix-viable counterpart of [`pigeonring_strong`] (Corollary 1):
/// a chain of length `l` all of whose *suffixes* are viable. Returns the
/// start of such a chain if one exists.
pub fn pigeonring_strong_suffix<T: BoxValue>(boxes: &[T], n: T, l: usize) -> Option<usize> {
    // A suffix-viable chain in B is a prefix-viable chain in the reversed
    // ring: going counterclockwise turns suffixes into prefixes.
    let m = boxes.len();
    let reversed: Vec<T> = boxes.iter().rev().copied().collect();
    let scheme = ThresholdScheme::uniform(n, m);
    crate::viability::find_prefix_viable(&reversed, &scheme, Direction::Le, l)
        // Map the reversed start back: reversed index r covers original
        // boxes (m−1−r), (m−1−r−1), …; the original chain starts at
        // (m−1−r−(l−1)) mod m.
        .map(|r| (2 * m - 1 - r - (l - 1)) % m)
}

/// Theorem 4 (pigeonhole, variable threshold allocation): if `‖B‖₁ ≤ n`
/// and `‖T‖₁ = n`, there exists `i` with `b_i ≤ t_i`.
pub fn pigeonhole_variable<T: BoxValue>(boxes: &[T], t: &[T]) -> Option<usize> {
    assert_eq!(boxes.len(), t.len());
    (0..boxes.len()).find(|&i| T::cmp_value(boxes[i], t[i]) != core::cmp::Ordering::Greater)
}

/// Theorem 5 (pigeonhole, integer reduction): if `‖B‖₁ ≤ n` and
/// `‖T‖₁ = n − m + 1` (integers), there exists `i` with `b_i ≤ t_i`.
/// The statement is the same witness as Theorem 4 with the reduced `T`.
pub fn pigeonhole_integer_reduced(boxes: &[i64], t: &[i64]) -> Option<usize> {
    pigeonhole_variable(boxes, t)
}

/// Theorem 6 (pigeonring, variable threshold allocation): if `‖B‖₁ ≤ n`
/// and `‖T‖₁ = n`, then for every `l` there is a chain each of whose
/// prefixes `c^{l'}_i` satisfies `‖c^{l'}_i‖₁ ≤ Σ_{j=i}^{i+l'−1} t_j`.
pub fn pigeonring_variable<T: BoxValue>(boxes: &[T], t: Vec<T>, l: usize) -> Option<usize> {
    assert_eq!(boxes.len(), t.len());
    let scheme = ThresholdScheme::variable(t);
    crate::viability::find_prefix_viable(boxes, &scheme, Direction::Le, l)
}

/// Theorem 7 (pigeonring, integer reduction): if `‖B‖₁ ≤ n` and
/// `‖T‖₁ = n − m + 1`, then for every `l` there is a chain each of whose
/// prefixes satisfies `‖c^{l'}_i‖₁ ≤ l' − 1 + Σ_{j=i}^{i+l'−1} t_j`.
pub fn pigeonring_integer_reduced(boxes: &[i64], t: Vec<i64>, l: usize) -> Option<usize> {
    assert_eq!(boxes.len(), t.len());
    let scheme = ThresholdScheme::integer_reduced(t);
    crate::viability::find_prefix_viable(boxes, &scheme, Direction::Le, l)
}

/// The `≥`-direction of Theorem 7 (used by set similarity search, §6.2):
/// if `‖B‖₁ ≥ n` and `‖T‖₁ = n + m − 1`, then for every `l` there is a
/// chain each of whose prefixes satisfies
/// `‖c^{l'}_i‖₁ ≥ 1 − l' + Σ_{j=i}^{i+l'−1} t_j`.
pub fn pigeonring_integer_reduced_ge(boxes: &[i64], t: Vec<i64>, l: usize) -> Option<usize> {
    assert_eq!(boxes.len(), t.len());
    let scheme = ThresholdScheme::integer_reduced(t);
    crate::viability::find_prefix_viable(boxes, &scheme, Direction::Ge, l)
}

/// Lemma 2 (concatenate chain) as a checkable statement: returns whether
/// concatenating two contiguous chains of the given viabilities yields the
/// predicted viability. Used only by tests.
pub fn lemma2_concat_prediction(first_viable: bool, second_viable: bool) -> Option<bool> {
    match (first_viable, second_viable) {
        (true, true) => Some(true),
        (false, false) => Some(false),
        _ => None, // mixed: the lemma makes no claim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive small-universe check of a theorem: enumerate all integer
    /// box layouts with values in `0..=vmax`, and assert the witness
    /// exists whenever the hypothesis holds.
    fn exhaust(m: usize, vmax: i64, mut check: impl FnMut(&[i64])) {
        let count = (vmax + 1).pow(m as u32);
        let mut boxes = vec![0i64; m];
        for code in 0..count {
            let mut c = code;
            for b in boxes.iter_mut() {
                *b = c % (vmax + 1);
                c /= vmax + 1;
            }
            check(&boxes);
        }
    }

    #[test]
    fn pigeonhole_exhaustive() {
        for n in 0..=8i64 {
            exhaust(4, 3, |b| {
                if b.iter().sum::<i64>() <= n {
                    assert!(pigeonhole(b, n).is_some(), "b={b:?} n={n}");
                }
            });
        }
    }

    #[test]
    fn pigeonring_basic_exhaustive() {
        for n in 0..=8i64 {
            exhaust(4, 3, |b| {
                if b.iter().sum::<i64>() <= n {
                    for l in 1..=4 {
                        assert!(pigeonring_basic(b, n, l).is_some(), "b={b:?} n={n} l={l}");
                    }
                }
            });
        }
    }

    #[test]
    fn pigeonring_strong_exhaustive() {
        for n in 0..=8i64 {
            exhaust(4, 3, |b| {
                if b.iter().sum::<i64>() <= n {
                    for l in 1..=4 {
                        assert!(pigeonring_strong(b, n, l).is_some(), "b={b:?} n={n} l={l}");
                    }
                }
            });
        }
    }

    #[test]
    fn pigeonring_strong_suffix_exhaustive() {
        // Corollary 1: a suffix-viable chain also always exists, and the
        // returned start must actually head a suffix-viable chain.
        for n in 2..=7i64 {
            exhaust(4, 3, |b| {
                if b.iter().sum::<i64>() <= n {
                    for l in 1..=4 {
                        let start = pigeonring_strong_suffix(b, n, l)
                            .unwrap_or_else(|| panic!("b={b:?} n={n} l={l}"));
                        // Verify all suffixes of c^l_start are viable.
                        for lp in 1..=l {
                            let s: i64 = (0..lp).map(|k| b[(start + l - lp + k) % 4]).sum();
                            assert!(
                                4 * s <= lp as i64 * n,
                                "suffix {lp} not viable: b={b:?} start={start} l={l} n={n}"
                            );
                        }
                    }
                }
            });
        }
    }

    #[test]
    fn theorem5_integer_reduction_exhaustive() {
        // For every layout with sum ≤ n and every T summing to n−m+1 drawn
        // from a small grid, a box with b_i ≤ t_i exists.
        let n = 6i64;
        let m = 3usize;
        exhaust(m, 3, |b| {
            if b.iter().sum::<i64>() <= n {
                exhaust(m, 4, |t| {
                    if t.iter().sum::<i64>() == n - m as i64 + 1 {
                        assert!(
                            pigeonhole_integer_reduced(b, t).is_some(),
                            "b={b:?} t={t:?}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn theorem6_exhaustive() {
        let n = 5i64;
        let m = 3usize;
        exhaust(m, 3, |b| {
            if b.iter().sum::<i64>() <= n {
                exhaust(m, 5, |t| {
                    if t.iter().sum::<i64>() == n {
                        for l in 1..=m {
                            assert!(
                                pigeonring_variable(b, t.to_vec(), l).is_some(),
                                "b={b:?} t={t:?} l={l}"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn theorem7_exhaustive() {
        let n = 5i64;
        let m = 3usize;
        exhaust(m, 3, |b| {
            if b.iter().sum::<i64>() <= n {
                exhaust(m, 3, |t| {
                    if t.iter().sum::<i64>() == n - m as i64 + 1 {
                        for l in 1..=m {
                            assert!(
                                pigeonring_integer_reduced(b, t.to_vec(), l).is_some(),
                                "b={b:?} t={t:?} l={l}"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn theorem7_ge_exhaustive() {
        // ≥ case: ‖B‖₁ ≥ n, ‖T‖₁ = n + m − 1.
        let n = 4i64;
        let m = 3usize;
        exhaust(m, 3, |b| {
            if b.iter().sum::<i64>() >= n {
                exhaust(m, 4, |t| {
                    if t.iter().sum::<i64>() == n + m as i64 - 1 {
                        for l in 1..=m {
                            assert!(
                                pigeonring_integer_reduced_ge(b, t.to_vec(), l).is_some(),
                                "b={b:?} t={t:?} l={l}"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn lemma1_subset_exhaustive() {
        // Lemma 1: pigeonring candidates ⊆ pigeonhole candidates.
        for n in 0..=8i64 {
            exhaust(4, 3, |b| {
                for l in 1..=4 {
                    if pigeonring_strong(b, n, l).is_some() {
                        assert!(pigeonhole(b, n).is_some(), "b={b:?} n={n} l={l}");
                    }
                    // And basic-form candidates ⊆ pigeonhole too.
                    if pigeonring_basic(b, n, l).is_some() && l == 1 {
                        assert!(pigeonhole(b, n).is_some());
                    }
                }
            });
        }
    }

    #[test]
    fn lemma4_strong_subset_of_basic() {
        exhaust(4, 3, |b| {
            for n in 0..=8i64 {
                for l in 1..=4 {
                    if pigeonring_strong(b, n, l).is_some() {
                        assert!(pigeonring_basic(b, n, l).is_some(), "b={b:?} n={n} l={l}");
                    }
                }
            }
        });
    }

    #[test]
    fn complete_chain_subsumes_verification() {
        // §3: when ‖B‖₁ = f(x,q) and l = m, candidates are exactly results.
        exhaust(4, 3, |b| {
            let sum: i64 = b.iter().sum();
            for n in 0..=8i64 {
                let cand = pigeonring_strong(b, n, 4).is_some();
                assert_eq!(cand, sum <= n, "b={b:?} n={n}");
            }
        });
    }

    #[test]
    fn real_valued_principle_holds_on_grid() {
        // The principle also holds for real n and real boxes (§1 note).
        let grid = [-0.75f64, 0.0, 0.4, 1.1];
        for &a in &grid {
            for &b in &grid {
                for &c in &grid {
                    let boxes = [a, b, c];
                    let n = 1.3f64;
                    if a + b + c <= n {
                        for l in 1..=3 {
                            assert!(
                                pigeonring_strong(&boxes, n, l).is_some(),
                                "boxes={boxes:?} l={l}"
                            );
                        }
                    }
                }
            }
        }
    }
}
