//! # pigeonring-core
//!
//! Core implementation of the **pigeonring principle** from
//! *"Pigeonring: A Principle for Faster Thresholded Similarity Search"*
//! (Jianbin Qin, Chuan Xiao, VLDB 2018).
//!
//! The pigeonhole principle states that if `m` boxes hold a total of at most
//! `n` items, some box holds at most `n/m` items. Filter-and-refine
//! algorithms for thresholded similarity search (τ-selection problems) use
//! this to turn a global constraint `f(x, q) ≤ τ` into a cheap per-feature
//! necessary condition. The pigeonring principle arranges the boxes in a
//! ring and yields strictly stronger conditions on *chains* of consecutive
//! boxes:
//!
//! * **Basic form** ([`theorem::pigeonring_basic`], Theorem 2): for every
//!   chain length `l ∈ [1..m]` there exist `l` consecutive boxes whose sum is
//!   at most `l·n/m`.
//! * **Strong form** ([`theorem::pigeonring_strong`], Theorem 3): there
//!   exists a chain all of whose prefixes `c^{l'}` satisfy
//!   `‖c^{l'}‖₁ ≤ l'·n/m` — a *prefix-viable* chain.
//!
//! Both extend to variable threshold allocation (Theorem 6), integer
//! reduction (Theorem 7), and the `≥` direction.
//!
//! ## Crate layout
//!
//! * [`ring`] — chains over a ring of boxes: sums, prefixes, suffixes.
//! * [`viability`] — threshold schemes ([`viability::ThresholdScheme`]) and
//!   the chain-viability predicates used for filtering, including the
//!   incremental prefix-viable search with Corollary-2 skipping.
//! * [`theorem`] — the principle statements as checkable functions, plus
//!   brute-force witnesses used by the test suite.
//! * [`framework`] — the universal filtering framework `⟨F, B, D⟩` of §5
//!   with completeness (Lemma 6) and tightness (Lemma 7) checkers.
//! * [`analysis`] — the filtering-performance analysis of §3.1
//!   (word-set recurrences producing `Pr(CAND_l)` and `Pr(RES)`), which
//!   regenerates Figure 2.
//! * [`integral`] — the continuous (integral) forms of both principles
//!   (Appendix B, Theorems 8 and 9) over piecewise-constant functions.
//! * [`fxhash`] — a small FxHash-style hasher for hot integer-keyed maps.
//!
//! ## Quick example
//!
//! ```
//! use pigeonring_core::viability::{ThresholdScheme, Direction, find_prefix_viable};
//!
//! // Example 1/5 of the paper: m = 5 boxes, threshold n = 5.
//! let boxes = [2i64, 1, 2, 2, 1]; // sums to 8 > 5, a false positive for
//!                                 // the pigeonhole filter (b1 = 1 ≤ 5/5)
//! let scheme = ThresholdScheme::uniform(5, 5);
//! // Pigeonhole (chain length 1) admits it...
//! assert!(find_prefix_viable(&boxes, &scheme, Direction::Le, 1).is_some());
//! // ...but the pigeonring principle at chain length 2 filters it.
//! assert!(find_prefix_viable(&boxes, &scheme, Direction::Le, 2).is_none());
//! ```

pub mod analysis;
pub mod framework;
pub mod fxhash;
pub mod integral;
pub mod ring;
pub mod scratch;
pub mod theorem;
pub mod viability;

pub use framework::FilterInstance;
pub use scratch::EpochScratch;
pub use viability::{Direction, ThresholdScheme};
