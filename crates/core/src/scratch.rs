//! Epoch-stamped per-thread query scratch shared by the domain engines.
//!
//! The ring engines deduplicate candidates and memoize Corollary-2
//! ruled-out chain starts with *epoch stamping*: instead of clearing an
//! `n`-sized array per query, each query bumps an epoch counter and a
//! slot is "set" iff its stamp equals the current epoch. This struct
//! holds that mechanism once — including the two subtle paths (resize
//! resets the epoch; wrap-around at `u32::MAX` clears the stamps) — so
//! the per-domain scratch types cannot drift apart.

/// Epoch-stamped candidate-dedup array plus Corollary-2 ruled-start
/// bitmasks, lazily sized to the engine's record count.
///
/// `Default` yields an empty scratch; the first [`EpochScratch::next_epoch`]
/// sizes it. Fields are public so engines can split-borrow them inside
/// probe closures; treat a slot as set only when its stamp equals the
/// epoch returned by `next_epoch`.
#[derive(Clone, Debug, Default)]
pub struct EpochScratch {
    epoch: u32,
    /// Per-record stamp: record already accepted as a candidate this
    /// query.
    pub accepted: Vec<u32>,
    /// Per-record stamp validating `ruled_mask` for this query.
    pub ruled_epoch: Vec<u32>,
    /// Per-record bitmask of chain starts ruled out by Corollary 2.
    pub ruled_mask: Vec<u64>,
}

impl EpochScratch {
    /// Sizes the buffers for an `n`-record engine and advances the
    /// epoch, resetting all stamps on resize or on epoch wrap-around.
    /// Returns the new epoch — which is `1` exactly when the stamps were
    /// (re)initialized, so wrappers stacking extra epoch-stamped state on
    /// top can reset it on that signal.
    pub fn next_epoch(&mut self, n: usize) -> u32 {
        if self.accepted.len() != n {
            self.accepted = vec![0; n];
            self.ruled_epoch = vec![0; n];
            self.ruled_mask = vec![0; n];
            self.epoch = 0;
        } else if self.epoch == u32::MAX {
            self.accepted.fill(0);
            self.ruled_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_advance_and_stamps_hold() {
        let mut s = EpochScratch::default();
        let e1 = s.next_epoch(4);
        assert_eq!(e1, 1);
        s.accepted[2] = e1;
        let e2 = s.next_epoch(4);
        assert_eq!(e2, 2);
        // The stale stamp no longer reads as set.
        assert_ne!(s.accepted[2], e2);
    }

    #[test]
    fn resize_resets_epoch_to_one() {
        let mut s = EpochScratch::default();
        for _ in 0..5 {
            s.next_epoch(3);
        }
        assert_eq!(s.next_epoch(7), 1, "resize must restart the epoch");
        assert_eq!(s.accepted.len(), 7);
        assert!(s.accepted.iter().all(|&v| v == 0));
    }

    #[test]
    fn wraparound_clears_stamps_and_returns_one() {
        let mut s = EpochScratch::default();
        s.next_epoch(2);
        s.epoch = u32::MAX;
        s.accepted[0] = u32::MAX;
        s.ruled_epoch[1] = u32::MAX;
        let e = s.next_epoch(2);
        assert_eq!(e, 1);
        assert_eq!(s.accepted[0], 0);
        assert_eq!(s.ruled_epoch[1], 0);
    }
}
