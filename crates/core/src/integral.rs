//! The continuous (integral) form of the principles — Appendix B.
//!
//! Theorem 8 extends the pigeonhole principle to Riemann-integrable box
//! functions: if `∫_u^{u+m} b(x) dx ≤ n` then some point has
//! `b(x) ≤ n/m`. Theorem 9 is the pigeonring counterpart for *periodic*
//! `b` (period `m` — the continuous ring): there exists `x₁` such that
//! **every** window `[x₁, x₂]` with `x₂ ≤ x₁ + m` satisfies
//! `∫_{x₁}^{x₂} b ≤ (x₂ − x₁)·n/m` — the continuous analogue of a
//! prefix-viable chain.
//!
//! We work with piecewise-constant functions ([`StepFun`]): they are
//! dense in the Riemann-integrable functions, make every integral exact
//! rational arithmetic in `f64`, and are exactly the box sequences of the
//! discrete principle when the pieces have unit width — which the tests
//! exploit to check that the continuous statements *contain* the
//! discrete ones.
//!
//! The witness search mirrors Appendix A's geometric interpretation: for
//! the cumulative function `g(x) = ∫_0^x b`, a start `x₁` heads an
//! all-prefix-viable window iff the line through `(x₁, g(x₁))` with slope
//! `n/m` stays on or above `g` over `[x₁, x₁ + m]`; the witness is the
//! point attaining the maximal `g(x) − x·n/m` (the "greatest y-intercept"
//! line L of Figure 13).

/// A piecewise-constant function on `[0, m)`, extended periodically.
/// Piece `i` covers `[edges[i], edges[i+1])` with value `values[i]`.
#[derive(Clone, Debug)]
pub struct StepFun {
    edges: Vec<f64>,
    values: Vec<f64>,
}

impl StepFun {
    /// Builds a step function from breakpoints `edges` (strictly
    /// increasing, starting at 0) and per-piece `values`
    /// (`values.len() + 1 == edges.len()`).
    ///
    /// # Panics
    /// Panics on malformed input.
    pub fn new(edges: Vec<f64>, values: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least one piece");
        assert_eq!(edges.len(), values.len() + 1, "one value per piece");
        assert_eq!(edges[0], 0.0, "domain starts at 0");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        assert!(
            values.iter().all(|v| v.is_finite()),
            "values must be finite"
        );
        StepFun { edges, values }
    }

    /// A step function with unit-width pieces — exactly a discrete box
    /// sequence laid on the line.
    pub fn from_boxes(boxes: &[f64]) -> Self {
        let edges = (0..=boxes.len()).map(|i| i as f64).collect();
        StepFun::new(edges, boxes.to_vec())
    }

    /// The period `m` (domain length).
    pub fn period(&self) -> f64 {
        *self.edges.last().expect("non-empty edges")
    }

    /// `b(x)` with periodic extension.
    pub fn eval(&self, x: f64) -> f64 {
        let m = self.period();
        let xm = x.rem_euclid(m);
        let i = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&xm).expect("finite"))
        {
            Ok(i) => i.min(self.values.len() - 1),
            Err(i) => i - 1,
        };
        self.values[i]
    }

    /// Exact `∫_0^x b` for `x ∈ [0, m]` (no periodic wrap).
    fn cumulative_within(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for (i, v) in self.values.iter().enumerate() {
            let lo = self.edges[i];
            let hi = self.edges[i + 1];
            if x <= lo {
                break;
            }
            acc += v * (x.min(hi) - lo);
        }
        acc
    }

    /// Exact `g(x) = ∫_0^x b` for any `x ≥ 0` (periodic extension).
    pub fn cumulative(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "cumulative defined for x ≥ 0");
        let m = self.period();
        let whole = (x / m).floor();
        whole * self.cumulative_within(m) + self.cumulative_within(x - whole * m)
    }

    /// Exact `∫_{x1}^{x2} b` for `0 ≤ x1 ≤ x2`.
    pub fn integral(&self, x1: f64, x2: f64) -> f64 {
        assert!(0.0 <= x1 && x1 <= x2, "invalid interval");
        self.cumulative(x2) - self.cumulative(x1)
    }

    /// Candidate witness points: piece edges within one period (the
    /// extrema of `g(x) − x·s` for piecewise-constant `b` lie on edges).
    fn breakpoints(&self) -> impl Iterator<Item = f64> + '_ {
        self.edges.iter().copied()
    }
}

/// Theorem 8 (integral pigeonhole): if `∫_0^m b ≤ n`, returns a point
/// `x` with `b(x) ≤ n/m`. Returns `None` only when the hypothesis fails.
pub fn integral_pigeonhole(b: &StepFun, n: f64) -> Option<f64> {
    let m = b.period();
    let slope = n / m;
    // For a step function the minimum value is attained on some piece.
    let (i, v) = b
        .values
        .iter()
        .enumerate()
        .min_by(|a, bb| a.1.partial_cmp(bb.1).expect("finite values"))?;
    (*v <= slope + 1e-12).then(|| b.edges[i])
}

/// Theorem 9 (integral pigeonring): if `∫_0^m b ≤ n` for the periodic
/// `b`, returns `x₁` such that every `x₂ ∈ [x₁, x₁ + m]` satisfies
/// `∫_{x₁}^{x₂} b ≤ (x₂ − x₁)·n/m`. The witness maximizes
/// `g(x) − x·n/m` over one period (Appendix A's line argument).
pub fn integral_pigeonring(b: &StepFun, n: f64) -> Option<f64> {
    let m = b.period();
    if b.integral(0.0, m) > n + 1e-9 {
        return None; // hypothesis fails
    }
    let slope = n / m;
    // x₁ = argmax g(x) − slope·x over the breakpoints of one period.
    let x1 = b
        .breakpoints()
        .max_by(|&p, &q| {
            let fp = b.cumulative(p) - slope * p;
            let fq = b.cumulative(q) - slope * q;
            fp.partial_cmp(&fq).expect("finite")
        })
        .expect("non-empty breakpoints");
    Some(x1 % m)
}

/// Checks the Theorem 9 witness property on a grid (test helper): every
/// prefix window from `x1` satisfies the quota up to tolerance.
pub fn prefix_windows_viable(b: &StepFun, n: f64, x1: f64, grid: usize) -> bool {
    let m = b.period();
    let slope = n / m;
    (1..=grid).all(|k| {
        let x2 = x1 + m * k as f64 / grid as f64;
        b.integral(x1, x2) <= slope * (x2 - x1) + 1e-9
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_eval_and_integrals() {
        let b = StepFun::new(vec![0.0, 1.0, 2.5, 4.0], vec![2.0, 0.0, 1.0]);
        assert_eq!(b.period(), 4.0);
        assert_eq!(b.eval(0.5), 2.0);
        assert_eq!(b.eval(2.0), 0.0);
        assert_eq!(b.eval(3.0), 1.0);
        assert_eq!(b.eval(4.5), 2.0); // periodic wrap
        assert!((b.integral(0.0, 4.0) - 3.5).abs() < 1e-12);
        assert!((b.integral(0.5, 2.0) - 1.0).abs() < 1e-12);
        // Across the period boundary.
        assert!((b.integral(3.0, 5.0) - (1.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn theorem8_finds_low_point() {
        let b = StepFun::new(vec![0.0, 1.0, 3.0], vec![5.0, 0.5]);
        // ∫ = 5 + 1 = 6 over m = 3 ⇒ n = 6 works: some b(x) ≤ 2.
        let x = integral_pigeonhole(&b, 6.0).expect("hypothesis holds");
        assert!(b.eval(x) <= 2.0 + 1e-12);
    }

    #[test]
    fn theorem9_witness_is_all_prefix_viable() {
        let layouts: [&[f64]; 4] = [
            &[2.0, 1.0, 2.0, 2.0, 1.0],
            &[2.0, 0.0, 3.0, 1.0, 2.0],
            &[0.0, 0.0, 0.0, 0.0, 8.0],
            &[1.5, 1.5, 1.5, 1.5, 1.5],
        ];
        for boxes in layouts {
            let b = StepFun::from_boxes(boxes);
            let n = boxes.iter().sum::<f64>();
            let x1 = integral_pigeonring(&b, n).expect("∫ = n satisfies the hypothesis");
            assert!(
                prefix_windows_viable(&b, n, x1, 50),
                "witness {x1} fails for {boxes:?}"
            );
        }
    }

    #[test]
    fn theorem9_contains_discrete_strong_form() {
        // With unit pieces, window quotas at integer x₂ are exactly the
        // discrete chain quotas, so the integral witness implies a
        // discrete prefix-viable chain exists at its ceiling start.
        let boxes = [2.0f64, 1.0, 2.0, 2.0, 1.0];
        let b = StepFun::from_boxes(&boxes);
        let n = 8.0; // ≥ the sum, hypothesis holds
        let x1 = integral_pigeonring(&b, n).expect("hypothesis holds");
        assert!(prefix_windows_viable(&b, n, x1, 100));
        // And the discrete principle agrees something exists at n = 8.
        let ds: Vec<i64> = boxes.iter().map(|&v| v as i64).collect();
        let scheme = crate::viability::ThresholdScheme::uniform(8i64, 5);
        assert!(crate::viability::find_prefix_viable(
            &ds,
            &scheme,
            crate::viability::Direction::Le,
            5
        )
        .is_some());
    }

    #[test]
    fn theorem9_rejects_violated_hypothesis() {
        let b = StepFun::from_boxes(&[3.0, 3.0, 3.0]);
        assert!(integral_pigeonring(&b, 8.0).is_none()); // ∫ = 9 > 8
    }

    #[test]
    fn fractional_edges_work() {
        let b = StepFun::new(vec![0.0, 0.25, 1.0, 2.0], vec![4.0, 0.25, 1.0]);
        let total = b.integral(0.0, 2.0);
        let x1 = integral_pigeonring(&b, total).expect("hypothesis holds");
        assert!(prefix_windows_viable(&b, total, x1, 64));
    }
}
