//! The universal filtering framework `⟨F, B, D⟩` of §5.
//!
//! A filtering instance is a triple of a *featuring function* `F` (feature
//! extraction), a sequence of *boxes* `B(x, q)` (functions of subbags of
//! features), and a *bounding function* `D` mapping the threshold `τ` to
//! the bound `n` on `‖B(x, q)‖₁`. The instance is usable for filtering the
//! constraint `f(x, q) ≤ τ` when it is **complete** (Definition 1:
//! `‖B(x, q)‖₁ ≤ D(τ)` is a necessary condition), and its candidates at
//! chain length `l = m` equal the results exactly when it is **tight**
//! (Definition 2: necessary and sufficient).
//!
//! [`FilterInstance`] encodes the triple as a trait; feature extraction is
//! folded into the implementor's state (indexes precompute features), and
//! `boxes` returns `B(x, q)`. [`check_complete`] and [`check_tight`] test
//! the sufficient-and-necessary conditions of Lemmata 6 and 7 on a finite
//! sample of object pairs — the general-perspective answer the paper gives
//! to "when may I use the principle safely".

use crate::viability::{Direction, ThresholdScheme};

/// A pigeonring filtering instance `⟨F, B, D⟩` for a τ-selection problem
/// with selection function `f`.
///
/// Box values are `f64` here because the framework must cover the general
/// real-valued statement; the production engines use `i64` boxes
/// internally and only implement this trait for conformance testing.
pub trait FilterInstance {
    /// The object universe `O` (or the representation of its members).
    type Object: ?Sized;

    /// The selection function `f(x, q)` this instance filters for.
    fn selection(&self, x: &Self::Object, q: &Self::Object) -> f64;

    /// The box sequence `B(x, q) = (b_0(x,q), …, b_{m−1}(x,q))`.
    fn boxes(&self, x: &Self::Object, q: &Self::Object) -> Vec<f64>;

    /// The bounding function `D(τ)`. Identity for Hamming/set/GED
    /// instances; e.g. `2τ` for the content-based edit-distance filter.
    fn bound(&self, tau: f64) -> f64;

    /// The comparison direction of the problem (`≤` by default).
    fn direction(&self) -> Direction {
        Direction::Le
    }

    /// Whether `x` is a candidate for query `q` at threshold `tau` under
    /// the strong-form pigeonring condition with chain length `l` and the
    /// uniform scheme `n = D(τ)`.
    fn is_candidate(&self, x: &Self::Object, q: &Self::Object, tau: f64, l: usize) -> bool {
        let boxes = self.boxes(x, q);
        let scheme = ThresholdScheme::uniform(self.bound(tau), boxes.len());
        let l = l.min(boxes.len());
        crate::viability::find_prefix_viable(&boxes, &scheme, self.direction(), l).is_some()
    }
}

/// A witness that a completeness or tightness condition fails on a sample:
/// the indices of the offending pair(s) in the sample slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Condition 1 fails for the pair at this index: `‖B‖₁` is not bounded
    /// by `D(f)` in the instance's direction.
    Bound(usize),
    /// Condition 2 fails for the ordered pair of indices `(i, j)` with
    /// `f_i` strictly closer than `f_j`.
    CrossPair(usize, usize),
}

/// Checks the sufficient-and-necessary completeness conditions of Lemma 6
/// on a finite sample of `(f(x,q), ‖B(x,q)‖₁)` observations.
///
/// Direction ≤ (Lemma 6 verbatim): (1) `‖B‖₁ ≤ D(f)` for every pair;
/// (2) no two pairs with `f₁ < f₂` and `‖B₁‖₁ > D(f₂)`. Direction ≥ is the
/// mirror image. Passing on a sample does not prove completeness over all
/// of `O × O`, but a violation disproves it; engines pair this with
/// end-to-end equality tests against linear scan.
pub fn check_complete(
    pairs: &[(f64, f64)],
    bound: impl Fn(f64) -> f64,
    dir: Direction,
) -> Result<(), Violation> {
    for (i, &(f, norm)) in pairs.iter().enumerate() {
        let ok = match dir {
            Direction::Le => norm <= bound(f),
            Direction::Ge => norm >= bound(f),
        };
        if !ok {
            return Err(Violation::Bound(i));
        }
    }
    for (i, &(f1, n1)) in pairs.iter().enumerate() {
        for (j, &(f2, _)) in pairs.iter().enumerate() {
            let bad = match dir {
                Direction::Le => f1 < f2 && n1 > bound(f2),
                Direction::Ge => f1 > f2 && n1 < bound(f2),
            };
            if bad {
                return Err(Violation::CrossPair(i, j));
            }
        }
    }
    Ok(())
}

/// Checks the tightness conditions of Lemma 7 on a finite sample.
///
/// Direction ≤: (1) as in [`check_complete`]; (2) no two pairs with
/// `f₁ < f₂` and `D(f₁) ≥ ‖B₂‖₁` — i.e. the bound at a strictly smaller
/// `f` must not already admit the larger pair's norm.
pub fn check_tight(
    pairs: &[(f64, f64)],
    bound: impl Fn(f64) -> f64,
    dir: Direction,
) -> Result<(), Violation> {
    check_complete(pairs, &bound, dir)?;
    for (i, &(f1, _)) in pairs.iter().enumerate() {
        for (j, &(f2, n2)) in pairs.iter().enumerate() {
            let bad = match dir {
                Direction::Le => f1 < f2 && bound(f1) >= n2,
                Direction::Ge => f1 > f2 && bound(f1) <= n2,
            };
            if bad {
                return Err(Violation::CrossPair(i, j));
            }
        }
    }
    Ok(())
}

/// The trivial complete-but-useless instance of §5 (`m = 1`, `b₀ = −1`,
/// `D(τ) = 0`): everything is a candidate. Kept as a documented example
/// and a degenerate-case test fixture.
pub struct TrivialInstance<F>(pub F);

impl<F: Fn(&[f64], &[f64]) -> f64> FilterInstance for TrivialInstance<F> {
    type Object = [f64];

    fn selection(&self, x: &[f64], q: &[f64]) -> f64 {
        (self.0)(x, q)
    }

    fn boxes(&self, _x: &[f64], _q: &[f64]) -> Vec<f64> {
        vec![-1.0]
    }

    fn bound(&self, _tau: f64) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Hamming instance: f = Hamming distance over disjoint parts,
    /// ‖B‖₁ = f exactly, D = identity. Complete and tight (Lemma 7).
    fn hamming_pairs() -> Vec<(f64, f64)> {
        (0..20).map(|k| (k as f64, k as f64)).collect()
    }

    #[test]
    fn identity_instance_is_complete_and_tight() {
        let pairs = hamming_pairs();
        assert_eq!(check_complete(&pairs, |t| t, Direction::Le), Ok(()));
        assert_eq!(check_tight(&pairs, |t| t, Direction::Le), Ok(()));
    }

    #[test]
    fn lower_bound_instance_is_complete_not_tight() {
        // Pivotal/Pars style: ‖B‖₁ ≤ f (strict for some pairs), D = id.
        // Complete, but tightness Condition 2 fails: some pair with larger
        // f has norm ≤ D of a smaller f.
        let pairs = vec![(0.0, 0.0), (2.0, 1.0), (3.0, 3.0), (5.0, 2.0)];
        assert_eq!(check_complete(&pairs, |t| t, Direction::Le), Ok(()));
        assert!(matches!(
            check_tight(&pairs, |t| t, Direction::Le),
            Err(Violation::CrossPair(_, _))
        ));
    }

    #[test]
    fn bound_violation_detected() {
        // A pair whose norm exceeds D(f) is not complete.
        let pairs = vec![(1.0, 2.0)];
        assert_eq!(
            check_complete(&pairs, |t| t, Direction::Le),
            Err(Violation::Bound(0))
        );
    }

    #[test]
    fn cross_pair_violation_detected() {
        // f1 < f2 but ‖B1‖ > D(f2): filtering at τ = f2 would miss pair 1.
        // Needs a decreasing D so Condition 1 holds for both pairs while
        // Condition 2 fails.
        let pairs = vec![(1.0, 3.0), (2.0, 1.0)];
        let d = |t: f64| if t < 1.5 { 3.0 } else { 2.0 };
        assert_eq!(
            check_complete(&pairs, d, Direction::Le),
            Err(Violation::CrossPair(0, 1))
        );
    }

    #[test]
    fn ge_direction_mirrors() {
        // Overlap-style: ‖B‖₁ = f, D = id, direction ≥.
        let pairs = hamming_pairs();
        assert_eq!(check_complete(&pairs, |t| t, Direction::Ge), Ok(()));
        assert_eq!(check_tight(&pairs, |t| t, Direction::Ge), Ok(()));
        // An upper-bounding instance (‖B‖ ≥ f) is complete for ≥…
        let ub = vec![(1.0, 2.0), (3.0, 3.0)];
        assert_eq!(check_complete(&ub, |t| t, Direction::Ge), Ok(()));
        // …but a norm below D(f) is not.
        let bad = vec![(3.0, 1.0)];
        assert_eq!(
            check_complete(&bad, |t| t, Direction::Ge),
            Err(Violation::Bound(0))
        );
    }

    #[test]
    fn trivial_instance_admits_everything() {
        let inst = TrivialInstance(|x: &[f64], q: &[f64]| {
            x.iter().zip(q).map(|(a, b)| (a - b).abs()).sum()
        });
        let x = [1.0, 2.0];
        let q = [9.0, 9.0];
        // f is large but the trivial instance still marks it a candidate.
        assert!(inst.selection(&x, &q) > 10.0);
        assert!(inst.is_candidate(&x, &q, 0.5, 1));
    }

    #[test]
    fn is_candidate_respects_chain_length() {
        struct Ident;
        impl FilterInstance for Ident {
            type Object = [f64];
            fn selection(&self, x: &[f64], q: &[f64]) -> f64 {
                x.iter().zip(q).map(|(a, b)| (a - b).abs()).sum()
            }
            fn boxes(&self, x: &[f64], q: &[f64]) -> Vec<f64> {
                x.iter().zip(q).map(|(a, b)| (a - b).abs()).collect()
            }
            fn bound(&self, tau: f64) -> f64 {
                tau
            }
        }
        // Example 1 layout again, as per-dimension absolute differences.
        let x = [2.0, 1.0, 2.0, 2.0, 1.0];
        let q = [0.0; 5];
        assert!(Ident.is_candidate(&x, &q, 5.0, 1));
        assert!(!Ident.is_candidate(&x, &q, 5.0, 2));
    }
}
