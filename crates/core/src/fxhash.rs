//! A minimal FxHash-style hasher for hot, integer-keyed hash maps.
//!
//! The default SipHash is HashDoS-resistant but measurably slow for the
//! short integer and byte-string keys that dominate the inverted indexes
//! in this workspace (per-part Hamming signatures, token ids, q-gram ids).
//! The `rustc-hash` crate is outside the allowed dependency set, so we
//! implement the same multiply-and-rotate construction here (~20 lines).
//! It is **not** collision-resistant against adversarial keys; all keys in
//! this workspace come from our own generators and indexes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx (Firefox) hash: a word-at-a-time multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
            // Length-tag so "ab" and "ab\0" differ.
            self.add(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 17, i as usize);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 17)), Some(&(i as usize)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_keys_distinguish_length() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh = BuildHasherDefault::<FxHasher>::default();
        let h1 = bh.hash_one(b"ab".as_slice());
        let h2 = bh.hash_one(b"ab\0".as_slice());
        assert_ne!(h1, h2);
    }

    #[test]
    fn spreads_sequential_keys() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh = BuildHasherDefault::<FxHasher>::default();
        let mut buckets = [0usize; 16];
        for i in 0..4096u64 {
            buckets[(bh.hash_one(i) >> 60) as usize] += 1;
        }
        // No bucket should be empty or hold more than half the keys.
        for &b in &buckets {
            assert!(b > 0 && b < 2048, "poor distribution: {buckets:?}");
        }
    }
}
