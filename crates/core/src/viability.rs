//! Chain viability predicates and threshold schemes.
//!
//! A chain is *viable* when its sum is within its quota; the quota depends
//! on the threshold scheme in use:
//!
//! | Scheme | Source | Quota for `c^{l}_i` (direction ≤) | Quota (direction ≥) |
//! |---|---|---|---|
//! | [`ThresholdScheme::Uniform`] | Theorems 2/3 | `l·n/m` | `l·n/m` |
//! | [`ThresholdScheme::Variable`] | Theorem 6 | `Σ_{j=i}^{i+l−1} t_j` | `Σ t_j` |
//! | [`ThresholdScheme::IntegerReduced`] | Theorem 7 | `l − 1 + Σ t_j` | `1 − l + Σ t_j` |
//!
//! A chain is *prefix-viable* when every one of its prefixes is viable.
//! The strong form of the pigeonring principle guarantees that every true
//! result has a prefix-viable chain, so searching for one is the filtering
//! condition. [`find_prefix_viable`] performs that search over all ring
//! starts with the Corollary-2 skipping optimization of §7;
//! [`check_prefix_viable_lazy`] is the incremental single-start variant
//! used by the per-problem engines, which compute box values on demand and
//! abort at the first non-viable prefix.
//!
//! Integer box values use exact integer arithmetic for the `l·n/m`
//! comparison (`m·sum ⋛ l·n`), avoiding any floating-point rounding at the
//! filter boundary.

use core::cmp::Ordering;

/// Comparison direction of the τ-selection problem.
///
/// `Le` covers `f(x, q) ≤ τ` (distances); `Ge` covers `f(x, q) ≥ τ`
/// (similarities, e.g. overlap). The paper states everything for `≤` and
/// notes the `≥` extension (§2.2, §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Results satisfy `f(x, q) ≤ τ`; viable means sum ≤ quota.
    Le,
    /// Results satisfy `f(x, q) ≥ τ`; viable means sum ≥ quota.
    Ge,
}

impl Direction {
    /// Whether `sum` is within quota in this direction.
    #[inline]
    fn admits(self, ord: Ordering) -> bool {
        match self {
            Direction::Le => ord != Ordering::Greater,
            Direction::Ge => ord != Ordering::Less,
        }
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for i64 {}
    impl Sealed for f64 {}
}

/// Numeric type usable as a box value. Sealed: implemented for `i64`
/// (Hamming distance, overlap, edit distance, GED — every case study in the
/// paper) and `f64` (the general real-valued statement of the principle).
pub trait BoxValue:
    Copy
    + PartialOrd
    + core::fmt::Debug
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::iter::Sum<Self>
    + sealed::Sealed
{
    /// Additive identity.
    const ZERO: Self;

    /// Compares `sum` with the uniform quota `l·n/m` exactly.
    fn cmp_uniform(sum: Self, l: usize, n: Self, m: usize) -> Ordering;

    /// Compares `sum` with `offset + t_sum` where `offset` is the integer
    /// reduction slack (`l − 1` or `1 − l`).
    fn cmp_offset(sum: Self, offset: i64, t_sum: Self) -> Ordering;

    /// Plain comparison (used for variable-threshold quotas).
    fn cmp_value(sum: Self, quota: Self) -> Ordering;
}

impl BoxValue for i64 {
    const ZERO: Self = 0;

    #[inline]
    fn cmp_uniform(sum: Self, l: usize, n: Self, m: usize) -> Ordering {
        // sum ⋛ l·n/m  ⟺  m·sum ⋛ l·n (m > 0), computed exactly in i64.
        (sum * m as i64).cmp(&(l as i64 * n))
    }

    #[inline]
    fn cmp_offset(sum: Self, offset: i64, t_sum: Self) -> Ordering {
        sum.cmp(&(offset + t_sum))
    }

    #[inline]
    fn cmp_value(sum: Self, quota: Self) -> Ordering {
        sum.cmp(&quota)
    }
}

impl BoxValue for f64 {
    const ZERO: Self = 0.0;

    #[inline]
    fn cmp_uniform(sum: Self, l: usize, n: Self, m: usize) -> Ordering {
        sum.partial_cmp(&(l as f64 * n / m as f64))
            .expect("box values must not be NaN")
    }

    #[inline]
    fn cmp_offset(sum: Self, offset: i64, t_sum: Self) -> Ordering {
        sum.partial_cmp(&(offset as f64 + t_sum))
            .expect("box values must not be NaN")
    }

    #[inline]
    fn cmp_value(sum: Self, quota: Self) -> Ordering {
        sum.partial_cmp(&quota).expect("box values must not be NaN")
    }
}

/// A threshold scheme: how the global bound `n = D(τ)` is distributed over
/// chains. See the module docs for the quota table.
#[derive(Clone, Debug)]
pub enum ThresholdScheme<T> {
    /// Uniform quota `l·n/m` (Theorems 2 and 3).
    Uniform {
        /// The global bound `n` (for filtering, `D(τ)`).
        n: T,
        /// The number of boxes `m`.
        m: usize,
    },
    /// Variable threshold allocation (Theorem 6): per-box thresholds whose
    /// range sums are the quotas. `prefix[k]` is `t_0 + … + t_{k−1}` over
    /// the doubled array so that wrapping range sums are O(1).
    Variable {
        /// Per-box thresholds `t_0, …, t_{m−1}`.
        t: Vec<T>,
        /// Prefix sums of `t` repeated twice, length `2m + 1`.
        prefix: Vec<T>,
    },
    /// Integer reduction (Theorem 7): like `Variable` but with slack
    /// `l − 1` (direction ≤) or `1 − l` (direction ≥) added to the quota.
    IntegerReduced {
        /// Per-box thresholds `t_0, …, t_{m−1}`.
        t: Vec<T>,
        /// Prefix sums of `t` repeated twice, length `2m + 1`.
        prefix: Vec<T>,
    },
}

fn doubled_prefix<T: BoxValue>(t: &[T]) -> Vec<T> {
    let m = t.len();
    let mut prefix = Vec::with_capacity(2 * m + 1);
    let mut acc = T::ZERO;
    prefix.push(acc);
    for k in 0..2 * m {
        acc = acc + t[k % m];
        prefix.push(acc);
    }
    prefix
}

impl<T: BoxValue> ThresholdScheme<T> {
    /// Uniform scheme with bound `n` over `m` boxes.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn uniform(n: T, m: usize) -> Self {
        assert!(m > 0, "need at least one box");
        ThresholdScheme::Uniform { n, m }
    }

    /// Variable threshold allocation with per-box thresholds `t`
    /// (Theorem 6 requires `‖T‖₁ = n`; this is the caller's contract and is
    /// asserted by [`ThresholdScheme::assert_sums_to`] in debug builds of
    /// the engines).
    ///
    /// # Panics
    /// Panics if `t` is empty.
    pub fn variable(t: Vec<T>) -> Self {
        assert!(!t.is_empty(), "need at least one box");
        let prefix = doubled_prefix(&t);
        ThresholdScheme::Variable { t, prefix }
    }

    /// Integer reduction with per-box thresholds `t` (Theorem 7 requires
    /// `‖T‖₁ = n − m + 1` for direction ≤, `n + m − 1` for direction ≥).
    ///
    /// # Panics
    /// Panics if `t` is empty.
    pub fn integer_reduced(t: Vec<T>) -> Self {
        assert!(!t.is_empty(), "need at least one box");
        let prefix = doubled_prefix(&t);
        ThresholdScheme::IntegerReduced { t, prefix }
    }

    /// The number of boxes `m` the scheme is defined over.
    pub fn num_boxes(&self) -> usize {
        match self {
            ThresholdScheme::Uniform { m, .. } => *m,
            ThresholdScheme::Variable { t, .. } | ThresholdScheme::IntegerReduced { t, .. } => {
                t.len()
            }
        }
    }

    /// Range sum `t_i + … + t_{i+l−1}` (wrapping) for allocation schemes.
    #[inline]
    fn t_range_sum(prefix: &[T], start: usize, l: usize) -> T {
        prefix[start + l] - prefix[start]
    }

    /// Whether a chain `c^l_start` with sum `sum` is **viable** under this
    /// scheme in direction `dir`.
    #[inline]
    pub fn chain_viable(&self, sum: T, start: usize, l: usize, dir: Direction) -> bool {
        debug_assert!(l >= 1 && l <= self.num_boxes());
        debug_assert!(start < self.num_boxes());
        let ord = match self {
            ThresholdScheme::Uniform { n, m } => T::cmp_uniform(sum, l, *n, *m),
            ThresholdScheme::Variable { prefix, .. } => {
                T::cmp_value(sum, Self::t_range_sum(prefix, start, l))
            }
            ThresholdScheme::IntegerReduced { prefix, .. } => {
                let offset = match dir {
                    Direction::Le => l as i64 - 1,
                    Direction::Ge => 1 - l as i64,
                };
                T::cmp_offset(sum, offset, Self::t_range_sum(prefix, start, l))
            }
        };
        dir.admits(ord)
    }

    /// Debug helper asserting the scheme's threshold-sum contract for a
    /// bound `n` (Theorem 6: `‖T‖₁ = n`; Theorem 7: `‖T‖₁ = n − m + 1` for
    /// ≤, `n + m − 1` for ≥). Uniform schemes always pass.
    pub fn assert_sums_to(&self, n: T, dir: Direction)
    where
        T: PartialEq,
    {
        match self {
            ThresholdScheme::Uniform { .. } => {}
            ThresholdScheme::Variable { t, prefix } => {
                let total = prefix[t.len()];
                assert!(
                    total == n,
                    "variable thresholds must sum to n, got {total:?} vs {n:?}"
                );
            }
            ThresholdScheme::IntegerReduced { t, prefix } => {
                let total = prefix[t.len()];
                // ‖T‖₁ must equal n − (m − 1) for ≤ and n + (m − 1) for ≥.
                let offset = match dir {
                    Direction::Le => -(t.len() as i64 - 1),
                    Direction::Ge => t.len() as i64 - 1,
                };
                assert!(
                    T::cmp_offset(total, offset, n) == Ordering::Equal,
                    "integer-reduced thresholds must sum to n ∓ (m − 1), got {total:?} for n = {n:?}"
                );
            }
        }
    }
}

/// Outcome of a single-start prefix-viability check.
///
/// `Err(l_fail)` reports the first prefix length at which the quota was
/// violated; by Corollary 2 no chain starting in `[start .. start+l_fail−1]`
/// can be prefix-viable, so callers may skip those starts.
pub type PrefixViability = Result<(), usize>;

/// Checks whether the chain of length `l` starting at `start` is
/// prefix-viable, reading box values from the slice.
///
/// # Panics
/// Panics (in debug builds) if `l ∉ [1..m]` or `start ≥ m`.
#[inline]
pub fn check_prefix_viable<T: BoxValue>(
    boxes: &[T],
    scheme: &ThresholdScheme<T>,
    dir: Direction,
    start: usize,
    l: usize,
) -> PrefixViability {
    let m = boxes.len();
    check_prefix_viable_lazy(scheme, dir, start, l, |j| boxes[j % m])
}

/// Incremental prefix-viability check with caller-supplied box values.
///
/// `get_box(j)` is called with *unwrapped* ring indices
/// `start, start+1, …` (callers index modulo `m` themselves if they store
/// boxes in a slice); it is invoked lazily, in order, and only until the
/// first non-viable prefix — this is the "second step of candidate
/// generation" of §7, where box values may be expensive (deletion
/// neighborhoods, content filters) and must not be computed past the first
/// failure.
#[inline]
pub fn check_prefix_viable_lazy<T: BoxValue>(
    scheme: &ThresholdScheme<T>,
    dir: Direction,
    start: usize,
    l: usize,
    mut get_box: impl FnMut(usize) -> T,
) -> PrefixViability {
    let m = scheme.num_boxes();
    debug_assert!(l >= 1 && l <= m, "chain length must be in [1..m]");
    debug_assert!(start < m, "chain start out of range");
    let mut sum = T::ZERO;
    for l_prime in 1..=l {
        sum = sum + get_box(start + l_prime - 1);
        if !scheme.chain_viable(sum, start, l_prime, dir) {
            return Err(l_prime);
        }
    }
    Ok(())
}

/// Searches the whole ring for a prefix-viable chain of length `l`,
/// returning the first start index found, with Corollary-2 skipping: when
/// the chain from `i` fails at prefix length `l'`, starts
/// `i+1 … i+l'−1` are skipped because none of them can head a
/// prefix-viable chain (Lemma 2 contrapositive).
pub fn find_prefix_viable<T: BoxValue>(
    boxes: &[T],
    scheme: &ThresholdScheme<T>,
    dir: Direction,
    l: usize,
) -> Option<usize> {
    let m = boxes.len();
    assert_eq!(m, scheme.num_boxes(), "boxes and scheme disagree on m");
    assert!(l >= 1 && l <= m, "chain length must be in [1..m]");
    let mut i = 0;
    while i < m {
        match check_prefix_viable(boxes, scheme, dir, i, l) {
            Ok(()) => return Some(i),
            Err(l_fail) => i += l_fail,
        }
    }
    None
}

/// Basic-form search (Theorem 2): the first start `i` whose *single* chain
/// of length exactly `l` is viable (no prefix condition).
pub fn find_viable_window<T: BoxValue>(
    boxes: &[T],
    scheme: &ThresholdScheme<T>,
    dir: Direction,
    l: usize,
) -> Option<usize> {
    let m = boxes.len();
    assert_eq!(m, scheme.num_boxes(), "boxes and scheme disagree on m");
    assert!(l >= 1 && l <= m, "chain length must be in [1..m]");
    (0..m).find(|&i| {
        let sum: T = (0..l).map(|k| boxes[(i + k) % m]).sum();
        scheme.chain_viable(sum, i, l, dir)
    })
}

/// Reference implementation of [`find_prefix_viable`] without the
/// Corollary-2 skip, used to validate the optimization in tests and the
/// `ablate-skip` benchmark.
pub fn find_prefix_viable_noskip<T: BoxValue>(
    boxes: &[T],
    scheme: &ThresholdScheme<T>,
    dir: Direction,
    l: usize,
) -> Option<usize> {
    let m = boxes.len();
    (0..m).find(|&i| check_prefix_viable(boxes, scheme, dir, i, l).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_pigeonhole_is_weak() {
        // Example 1: both layouts total 8 > 5 yet pass the pigeonhole
        // filter (chain length 1).
        let scheme = ThresholdScheme::uniform(5i64, 5);
        for b in [[2i64, 1, 2, 2, 1], [2, 0, 3, 1, 2]] {
            assert!(find_prefix_viable(&b, &scheme, Direction::Le, 1).is_some());
        }
    }

    #[test]
    fn intro_basic_form_filters_layout_a() {
        // Intro: layout (2,1,2,2,1) has no two consecutive boxes summing
        // to ≤ 2, so the basic form at l = 2 filters it…
        let scheme = ThresholdScheme::uniform(5i64, 5);
        let a = [2i64, 1, 2, 2, 1];
        assert!(find_viable_window(&a, &scheme, Direction::Le, 2).is_none());
        // …while (2,0,3,1,2) passes the basic form (b0 + b1 = 2)…
        let b = [2i64, 0, 3, 1, 2];
        assert_eq!(find_viable_window(&b, &scheme, Direction::Le, 2), Some(0));
        // …but both are filtered by the strong form (no i with b_i ≤ 1 and
        // b_i + b_{i+1} ≤ 2).
        assert!(find_prefix_viable(&a, &scheme, Direction::Le, 2).is_none());
        assert!(find_prefix_viable(&b, &scheme, Direction::Le, 2).is_none());
    }

    #[test]
    fn example_5_candidates_at_l2() {
        // Example 5: τ = 5, m = 5; x² and x³ remain candidates at l = 2,
        // x¹ and x⁴ are filtered (basic form; the strong form agrees here).
        let scheme = ThresholdScheme::uniform(5i64, 5);
        let x1 = [2i64, 1, 2, 2, 1];
        let x2 = [0i64, 2, 0, 2, 1];
        let x3 = [1i64, 2, 2, 1, 1];
        let x4 = [2i64, 2, 2, 2, 2];
        assert!(find_viable_window(&x1, &scheme, Direction::Le, 2).is_none());
        assert!(find_viable_window(&x2, &scheme, Direction::Le, 2).is_some());
        assert!(find_viable_window(&x3, &scheme, Direction::Le, 2).is_some());
        assert!(find_viable_window(&x4, &scheme, Direction::Le, 2).is_none());
        assert!(find_prefix_viable(&x2, &scheme, Direction::Le, 2).is_some());
        assert!(find_prefix_viable(&x3, &scheme, Direction::Le, 2).is_some());
    }

    #[test]
    fn example_6_strong_beats_basic() {
        // Example 6: B = (2,0,3,1,2), τ = 5, m = 5, l = 2. Basic form
        // passes via c^2_0 but its 1-prefix b0 = 2 > 1, so the strong form
        // filters the object.
        let b = [2i64, 0, 3, 1, 2];
        let scheme = ThresholdScheme::uniform(5i64, 5);
        assert_eq!(find_viable_window(&b, &scheme, Direction::Le, 2), Some(0));
        assert!(find_prefix_viable(&b, &scheme, Direction::Le, 2).is_none());
    }

    #[test]
    fn example_7_variable_thresholds() {
        // Example 7: x¹ = (2,1,2,2,1), T = (1,2,0,1,1), ‖T‖₁ = 5 = τ.
        // c^2_0 is the only viable chain of length 2 but its 1-prefix
        // violates t0 = 1, so x¹ is filtered.
        let b = [2i64, 1, 2, 2, 1];
        let scheme = ThresholdScheme::variable(vec![1i64, 2, 0, 1, 1]);
        scheme.assert_sums_to(5, Direction::Le);
        // Only start 0 has a viable length-2 chain.
        let viable2: Vec<usize> = (0..5)
            .filter(|&i| {
                let sum = b[i] + b[(i + 1) % 5];
                scheme.chain_viable(sum, i, 2, Direction::Le)
            })
            .collect();
        assert_eq!(viable2, vec![0]);
        // And that chain is not prefix-viable.
        assert_eq!(
            check_prefix_viable(&b, &scheme, Direction::Le, 0, 2),
            Err(1)
        );
        assert!(find_prefix_viable(&b, &scheme, Direction::Le, 2).is_none());
    }

    #[test]
    fn example_8_integer_reduction() {
        // Example 8: x³ = (1,2,2,1,1), T = (1,0,0,0,0), ‖T‖₁ = 1 = τ−m+1.
        // At l = 2, only c^2_4 satisfies the chain quota, but its 1-prefix
        // b4 = 1 > 1−1+t4 = 0, so x³ is filtered.
        let b = [1i64, 2, 2, 1, 1];
        let scheme = ThresholdScheme::integer_reduced(vec![1i64, 0, 0, 0, 0]);
        scheme.assert_sums_to(5, Direction::Le);
        let viable2: Vec<usize> = (0..5)
            .filter(|&i| {
                let sum = b[i] + b[(i + 1) % 5];
                scheme.chain_viable(sum, i, 2, Direction::Le)
            })
            .collect();
        assert_eq!(viable2, vec![4]);
        assert_eq!(
            check_prefix_viable(&b, &scheme, Direction::Le, 4, 2),
            Err(1)
        );
        assert!(find_prefix_viable(&b, &scheme, Direction::Le, 2).is_none());
    }

    #[test]
    fn ge_direction_integer_reduction_example_10_quotas() {
        // §6.2 / Example 10: τ = 9, m = 5, T = (4,1,2,2,4), ‖T‖₁ = 13 =
        // τ+m−1 (≥ case). The chain quota at l = 2 starting at 2 is
        // t2+t3−l+1 = 3; boxes (…,2,0,…) sum to 2 < 3, so the chain is not
        // viable.
        let scheme = ThresholdScheme::integer_reduced(vec![4i64, 1, 2, 2, 4]);
        scheme.assert_sums_to(9, Direction::Ge);
        assert!(!scheme.chain_viable(2, 2, 2, Direction::Ge));
        assert!(scheme.chain_viable(3, 2, 2, Direction::Ge));
        // Box-level (l = 1): viable means b_i ≥ t_i.
        assert!(scheme.chain_viable(2, 2, 1, Direction::Ge)); // b2 = 2 ≥ t2 = 2
        assert!(!scheme.chain_viable(0, 3, 1, Direction::Ge)); // b3 = 0 < t3 = 2
    }

    #[test]
    fn uniform_quota_is_exact_for_integers() {
        // sum ≤ l·n/m tested as m·sum ≤ l·n: for n = 5, m = 3, l = 2 the
        // quota is 10/3 ≈ 3.33; sum 3 passes, sum 4 fails.
        let scheme = ThresholdScheme::uniform(5i64, 3);
        assert!(scheme.chain_viable(3, 0, 2, Direction::Le));
        assert!(!scheme.chain_viable(4, 0, 2, Direction::Le));
    }

    #[test]
    fn f64_boxes_work() {
        let b = [0.5f64, 0.25, 0.75];
        let scheme = ThresholdScheme::uniform(1.5f64, 3);
        assert!(find_prefix_viable(&b, &scheme, Direction::Le, 3).is_some());
        let b2 = [0.9f64, 0.9, 0.9];
        assert!(find_prefix_viable(&b2, &scheme, Direction::Le, 1).is_none());
    }

    #[test]
    fn lazy_check_stops_at_first_failure() {
        let scheme = ThresholdScheme::uniform(4i64, 4);
        let mut calls = 0;
        let boxes = [0i64, 5, 0, 0];
        let r = check_prefix_viable_lazy(&scheme, Direction::Le, 0, 4, |j| {
            calls += 1;
            boxes[j % 4]
        });
        assert_eq!(r, Err(2)); // prefix sum 5 > 2·4/4 at length 2
        assert_eq!(calls, 2, "must not evaluate boxes past the failure");
    }

    #[test]
    fn skip_matches_noskip_exhaustively() {
        // Small exhaustive check that Corollary-2 skipping never changes
        // the outcome (a proptest widens this).
        let scheme = ThresholdScheme::uniform(6i64, 4);
        for a in 0..4i64 {
            for b in 0..4i64 {
                for c in 0..4i64 {
                    for d in 0..4i64 {
                        let boxes = [a, b, c, d];
                        for l in 1..=4 {
                            let fast =
                                find_prefix_viable(&boxes, &scheme, Direction::Le, l).is_some();
                            let slow = find_prefix_viable_noskip(&boxes, &scheme, Direction::Le, l)
                                .is_some();
                            assert_eq!(fast, slow, "boxes={boxes:?} l={l}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_shrink_with_chain_length() {
        // Lemma 4 on a concrete grid: candidate at l+1 ⇒ candidate at l.
        let scheme = ThresholdScheme::uniform(7i64, 5);
        for seed in 0..3000u64 {
            // Cheap deterministic pseudo-random boxes.
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut boxes = [0i64; 5];
            for b in &mut boxes {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = ((s >> 33) % 5) as i64;
            }
            let mut prev = true;
            for l in 1..=5 {
                let cand = find_prefix_viable(&boxes, &scheme, Direction::Le, l).is_some();
                assert!(
                    prev || !cand,
                    "candidate set must shrink: boxes={boxes:?} l={l}"
                );
                prev = cand;
            }
        }
    }

    #[test]
    #[should_panic(expected = "variable thresholds must sum to n")]
    fn variable_sum_contract_enforced() {
        let scheme = ThresholdScheme::variable(vec![1i64, 1, 1]);
        scheme.assert_sums_to(5, Direction::Le);
    }
}
