//! Chains over a ring of boxes.
//!
//! The paper organizes `m` boxes `b_0, …, b_{m−1}` clockwise in a ring where
//! `b_{m−1}` is adjacent to `b_0`. A *chain* `c^l_i` is the sequence of `l`
//! consecutive boxes starting at `b_i`, wrapping modulo `m`. This module
//! provides the small amount of modular-index machinery shared by the
//! viability predicates, the theorem validators, and the per-problem
//! engines, without allocating: a [`Chain`] is a cheap view over a box
//! slice.

/// A chain `c^l_i`: `len` consecutive boxes of `boxes`, starting at
/// `start`, wrapping modulo `boxes.len()`.
///
/// Invariants: `boxes` is non-empty, `start < boxes.len()`, and
/// `len ≤ boxes.len()` (the paper restricts chain length to at most `m`;
/// `len == 0` is the empty chain with sum 0).
#[derive(Clone, Copy, Debug)]
pub struct Chain<'a, T> {
    boxes: &'a [T],
    start: usize,
    len: usize,
}

impl<'a, T: Copy + core::iter::Sum> Chain<'a, T> {
    /// Creates the chain `c^len_start` over `boxes`.
    ///
    /// # Panics
    /// Panics if `boxes` is empty, `start ≥ boxes.len()`, or
    /// `len > boxes.len()`.
    pub fn new(boxes: &'a [T], start: usize, len: usize) -> Self {
        assert!(!boxes.is_empty(), "a ring needs at least one box");
        assert!(start < boxes.len(), "chain start out of range");
        assert!(len <= boxes.len(), "chain longer than the ring");
        Chain { boxes, start, len }
    }

    /// The number of boxes in the chain.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this is the empty chain (`‖c‖₁ = 0` by definition).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The start index `i` of `c^l_i`.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Iterates over the boxes of the chain in ring (clockwise) order.
    pub fn iter(&self) -> impl Iterator<Item = T> + 'a {
        let m = self.boxes.len();
        let boxes = self.boxes;
        let start = self.start;
        (0..self.len).map(move |k| boxes[(start + k) % m])
    }

    /// `‖c^l_i‖₁`: the sum of the boxes in the chain.
    pub fn sum(&self) -> T {
        self.iter().sum()
    }

    /// The `l'`-prefix `c^{l'}_i` of this chain (paper §3: for
    /// `l' ∈ [1..l]`, `c^{l'}_i` is an `l'`-prefix of `c^l_i`).
    ///
    /// # Panics
    /// Panics if `l_prime > self.len()`.
    pub fn prefix(&self, l_prime: usize) -> Chain<'a, T> {
        assert!(l_prime <= self.len, "prefix longer than chain");
        Chain {
            boxes: self.boxes,
            start: self.start,
            len: l_prime,
        }
    }

    /// The `l'`-suffix `c^{l'}_{i+l−l'}` of this chain.
    ///
    /// # Panics
    /// Panics if `l_prime > self.len()`.
    pub fn suffix(&self, l_prime: usize) -> Chain<'a, T> {
        assert!(l_prime <= self.len, "suffix longer than chain");
        let m = self.boxes.len();
        Chain {
            boxes: self.boxes,
            start: (self.start + self.len - l_prime) % m,
            len: l_prime,
        }
    }

    /// Whether `other` is a subchain of `self` in the sense of §3: a chain
    /// `c^{l'}_j` is a subchain of `c^l_i` if `j ≥ i` and `j + l' ≤ i + l`
    /// (indices taken on the unrolled ring starting at `i`).
    pub fn contains(&self, other: &Chain<'_, T>) -> bool {
        if !core::ptr::eq(self.boxes, other.boxes) {
            return false;
        }
        let m = self.boxes.len();
        // Offset of `other.start` from `self.start` going clockwise.
        let off = (other.start + m - self.start) % m;
        off + other.len <= self.len
    }

    /// Whether this is a complete chain `c^m_i` (every box appears once).
    pub fn is_complete(&self) -> bool {
        self.len == self.boxes.len()
    }
}

/// Sum of all elements of `boxes` (`‖B‖₁` in the paper).
pub fn norm1<T: Copy + core::iter::Sum>(boxes: &[T]) -> T {
    boxes.iter().copied().sum()
}

/// Rolling sums of every length-`l` chain: entry `i` is `‖c^l_i‖₁`.
///
/// Computed incrementally in `O(m)` time after the first window. Useful for
/// basic-form (Theorem 2) checks and for tests; the production filters use
/// the incremental prefix-viability scan in [`crate::viability`] instead.
pub fn window_sums<T>(boxes: &[T], l: usize) -> Vec<T>
where
    T: Copy + core::ops::Add<Output = T> + core::ops::Sub<Output = T> + core::iter::Sum,
{
    let m = boxes.len();
    assert!(l >= 1 && l <= m, "window length must be in [1..m]");
    let mut out = Vec::with_capacity(m);
    let mut sum: T = boxes[..l].iter().copied().sum();
    for i in 0..m {
        out.push(sum);
        // Slide: drop b_i, add b_{i+l}.
        sum = sum - boxes[i] + boxes[(i + l) % m];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure 1(a) of the paper: B = (2, 1, 2, 2, 1), n = 5, m = 5.
    const FIG1A: [i64; 5] = [2, 1, 2, 2, 1];

    #[test]
    fn example_4_chain_sums() {
        // Example 4: c^4_3 = (b3, b4, b0, b1), ‖c^4_3‖₁ = 2+1+2+1 = 6.
        let c = Chain::new(&FIG1A, 3, 4);
        assert_eq!(c.sum(), 6);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![2, 1, 2, 1]);
    }

    #[test]
    fn example_4_prefix_suffix_subchain() {
        let c43 = Chain::new(&FIG1A, 3, 4);
        // c^2_3 is a 2-prefix of c^4_3.
        let p = c43.prefix(2);
        assert_eq!((p.start(), p.len()), (3, 2));
        // c^3_4 is a 3-suffix of c^4_3.
        let s = c43.suffix(3);
        assert_eq!((s.start(), s.len()), (4, 3));
        // c^2_4 is a subchain of c^4_3.
        let sub = Chain::new(&FIG1A, 4, 2);
        assert!(c43.contains(&sub));
        // c^2_2 is not (starts before i = 3).
        let not_sub = Chain::new(&FIG1A, 2, 2);
        assert!(!c43.contains(&not_sub));
        // c^5_3 is a complete chain.
        let complete = Chain::new(&FIG1A, 3, 5);
        assert!(complete.is_complete());
        assert_eq!(complete.sum(), norm1(&FIG1A));
    }

    #[test]
    fn empty_chain_sums_to_zero() {
        let c = Chain::new(&FIG1A, 0, 0);
        assert!(c.is_empty());
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn window_sums_match_example_5() {
        // Example 5: for B(x¹,q) = (2,1,2,2,1), l = 2 the chain sums are
        // (3, 3, 4, 3, 3).
        assert_eq!(window_sums(&FIG1A, 2), vec![3, 3, 4, 3, 3]);
        // And for B(x²,q) = (0,2,0,2,1): (2, 2, 2, 3, 1).
        assert_eq!(window_sums(&[0i64, 2, 0, 2, 1], 2), vec![2, 2, 2, 3, 1]);
    }

    #[test]
    fn window_sums_wrap_correctly() {
        let b = [1i64, 2, 3, 4];
        assert_eq!(window_sums(&b, 3), vec![6, 9, 8, 7]);
        assert_eq!(window_sums(&b, 4), vec![10, 10, 10, 10]);
        assert_eq!(window_sums(&b, 1), b.to_vec());
    }

    #[test]
    fn chain_wraps_modulo_m() {
        let c = Chain::new(&FIG1A, 4, 3); // b4, b0, b1
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1, 2, 1]);
        assert_eq!(c.sum(), 4);
    }

    #[test]
    #[should_panic(expected = "chain longer than the ring")]
    fn overlong_chain_panics() {
        let _ = Chain::new(&FIG1A, 0, 6);
    }

    #[test]
    fn subchain_of_wrapping_chain() {
        let c = Chain::new(&FIG1A, 3, 4); // covers 3,4,0,1
        let wrap_sub = Chain::new(&FIG1A, 4, 3); // covers 4,0,1
        assert!(c.contains(&wrap_sub));
        let beyond = Chain::new(&FIG1A, 1, 2); // covers 1,2 — 2 not in c
        assert!(!c.contains(&beyond));
    }
}
